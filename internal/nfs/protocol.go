// Package nfs is the networked file service that stands in for the NFS
// share of the paper's testbed (§III-B): the McSD node exports a directory;
// the host mounts it and reads/writes files — data files and smartFAM log
// files — so that every byte of host-side access to SD-resident data
// crosses the network, exactly the data movement McSD exists to avoid.
//
// The wire protocol is a hand-rolled length-prefixed binary framing over
// one TCP connection per client, with a per-request Tag so many requests
// can be in flight at once (the client pipelines them through a bounded
// window and demultiplexes responses by tag). The previous gob codec is
// kept behind a compat switch (WireGob) for one release; the server
// auto-detects which framing a connection speaks from its first byte.
// Wrap the connection (or the listener) with netsim.Throttle to make the
// traffic pay Gigabit-Ethernet costs.
package nfs

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"mcsd/internal/smartfam"
)

// Op codes.
const (
	OpCreate = "create"
	OpAppend = "append"
	OpReadAt = "readat"
	OpStat   = "stat"
	OpList   = "list"
	OpRemove = "remove"
	OpRename = "rename" // atomic replace of Request.To by Request.Name
	OpWrite  = "write"  // whole-file write (truncate + create dirs)
	OpPing   = "ping"
	OpCommit = "commit" // splice staged temp Request.Name into Request.To server-side
	OpSum    = "sum"    // CRC32 of up to Request.N bytes at Request.Off, computed server-side
	OpWatch  = "watch"  // register a prefix watch; the server streams notify frames on NotifyTag
)

// NotifyTag is the reserved demux lane for unsolicited server->client
// change notifications. Client-issued requests are tagged starting at 1
// (transmit pre-increments), so tag 0 can never collide with a pending
// call: the demux routes any frame carrying it to the connection's watch
// streams instead of the pending map. A notify frame reuses the Response
// encoding — Names[0] is the changed file, Gen its change generation.
const NotifyTag = 0

// Commit modes, carried in Request.N of an OpCommit: whether the staged
// temp file is appended to the target or atomically replaces it.
const (
	CommitAppend  = 0
	CommitReplace = 1
)

// Request is one client->server message. Tag correlates the response on a
// pipelined connection; the server echoes it verbatim.
type Request struct {
	Tag  uint64
	Op   string
	Name string
	To   string // rename destination / commit target
	Data []byte
	Off  int64
	N    int
}

// Response is one server->client message. Data, when framed binary, is a
// zero-copy subslice of a pooled frame buffer; the client releases it back
// to the pool once the payload has been consumed.
type Response struct {
	Tag      uint64
	Data     []byte
	Size     int64
	MTimeNs  int64
	Gen      uint64 // server change generation (OpStat replies, notify frames)
	Names    []string
	Err      string
	NotExist bool
	EOF      bool

	frame *frameBuf // pooled backing buffer of Data (binary framing only)
}

// free returns the response's pooled frame buffer, if any. The response's
// Data must not be used afterwards.
func (r *Response) free() {
	if r.frame != nil {
		putFrame(r.frame)
		r.frame = nil
		r.Data = nil
	}
}

// MaxChunk bounds one ReadAt/Append payload so a single RPC cannot pin
// unbounded memory; larger operations are chunked by the client.
const MaxChunk = 1 << 20

// maxFrame bounds one binary frame body: a MaxChunk payload plus generous
// header/name-list room. The decoder rejects anything larger outright, so
// a corrupt length prefix cannot balloon into an arbitrary allocation.
const maxFrame = MaxChunk + 1<<20

// ErrRemote wraps a server-side failure.
var ErrRemote = errors.New("nfs: remote error")

// ErrFrame marks a malformed binary frame (bad length prefix, truncated
// body, unknown op code, inconsistent field lengths).
var ErrFrame = errors.New("nfs: malformed frame")

// ErrWatchUnsupported marks an OpWatch that cannot be served on this
// connection: the legacy gob codec has no notify lane, and pre-watch
// servers answer the op with an unknown-op error. Callers fall back to
// polling. Wraps the smartfam sentinel so FS consumers can detect the
// permanent case without importing this package.
var ErrWatchUnsupported = fmt.Errorf("nfs: %w", smartfam.ErrWatchUnsupported)

// Wire selects the on-the-wire encoding a client speaks.
type Wire int

const (
	// WireBinary is the length-prefixed binary framing (default).
	WireBinary Wire = iota
	// WireGob is the legacy gob codec, kept for one release so a fleet can
	// roll the framing change forward and back half at a time. The server
	// auto-detects it per connection.
	WireGob
)

// cleanName validates a share-relative path: non-empty, slash-separated,
// no "." or ".." components, no leading slash.
func cleanName(name string) (string, error) {
	if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, `\`) {
		return "", fmt.Errorf("nfs: invalid path %q", name)
	}
	for _, part := range strings.Split(name, "/") {
		if part == "" || part == "." || part == ".." {
			return "", fmt.Errorf("nfs: invalid path %q", name)
		}
	}
	return name, nil
}

// clientCodec is the client's half of a connection: frame requests out,
// demultiplexable responses in.
type clientCodec interface {
	writeRequest(*Request) error
	readResponse(*Response) error
}

// serverCodec is the server's half.
type serverCodec interface {
	readRequest(*Request) error
	writeResponse(*Response) error
}

// ---------------------------------------------------------------------------
// Legacy gob codec (WireGob).

// gobCodec pairs a gob encoder/decoder over one connection.
type gobCodec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

func newGobCodec(r io.Reader, w io.Writer) *gobCodec {
	return &gobCodec{enc: gob.NewEncoder(w), dec: gob.NewDecoder(r)}
}

func (c *gobCodec) writeRequest(r *Request) error {
	if err := c.enc.Encode(r); err != nil {
		return fmt.Errorf("nfs: encoding request: %w", err)
	}
	return nil
}

func (c *gobCodec) readRequest(r *Request) error {
	*r = Request{}
	err := c.dec.Decode(r)
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return io.EOF
	}
	if err != nil {
		return fmt.Errorf("nfs: decoding request: %w", err)
	}
	return nil
}

func (c *gobCodec) writeResponse(r *Response) error {
	if err := c.enc.Encode(r); err != nil {
		return fmt.Errorf("nfs: encoding response: %w", err)
	}
	return nil
}

func (c *gobCodec) readResponse(r *Response) error {
	*r = Response{}
	if err := c.dec.Decode(r); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return io.EOF
		}
		return fmt.Errorf("nfs: decoding response: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Binary framing (WireBinary).
//
// Every message is one frame:
//
//	uint32 length (big-endian, body length, high byte always 0x00) | body
//
// The high length byte doubles as the protocol discriminator: maxFrame
// keeps every length below 2^24, so a binary connection's first byte is
// always 0x00, while gob's first byte — an unsigned varint message length —
// never is. The server peeks one byte to pick the codec.
//
// Request body:
//
//	tag u64 | op u8 | off i64 | n i32 | nameLen u16 | name | toLen u16 | to | data…
//
// Response body:
//
//	tag u64 | flags u8 | size i64 | mtimeNs i64 | gen u64 | errLen u16 | err |
//	nameCount u32 | { nameLen u16 | name }… | data…
//
// The payload is the unframed tail in both directions, so decoding hands
// out a zero-copy subslice of the frame buffer instead of re-allocating
// per chunk.

// Response flag bits.
const (
	flagEOF      = 1 << 0
	flagNotExist = 1 << 1
)

// opCodes maps op names to their single-byte wire codes; opNames is the
// inverse. Code 0 is reserved (it marks an unknown op on decode).
var opCodes = map[string]byte{
	OpCreate: 1, OpAppend: 2, OpReadAt: 3, OpStat: 4, OpList: 5,
	OpRemove: 6, OpRename: 7, OpWrite: 8, OpPing: 9, OpCommit: 10,
	OpSum: 11, OpWatch: 12,
}

var opNames = func() [13]string {
	var names [13]string
	for name, code := range opCodes {
		names[code] = name
	}
	return names
}()

// frameBuf is a pooled frame body. Responses decoded from the wire keep a
// reference so the payload subslice can be released explicitly once copied
// out (or fully streamed) instead of churning a MaxChunk allocation per RPC.
type frameBuf struct {
	b []byte
}

var framePool = sync.Pool{
	New: func() any { return &frameBuf{b: make([]byte, 0, 64<<10)} },
}

func getFrame(n int) *frameBuf {
	fb := framePool.Get().(*frameBuf)
	if cap(fb.b) < n {
		fb.b = make([]byte, n)
	}
	fb.b = fb.b[:n]
	return fb
}

func putFrame(fb *frameBuf) {
	framePool.Put(fb)
}

// frameEncoder serializes messages into one reused buffer and emits each
// frame with a single Write, so a paced (netsim-throttled) connection sees
// one contiguous burst per message rather than a dribble of header writes.
type frameEncoder struct {
	w   io.Writer
	buf []byte
}

func newFrameEncoder(w io.Writer) *frameEncoder {
	return &frameEncoder{w: w, buf: make([]byte, 0, 4<<10)}
}

func (e *frameEncoder) flushFrame() error {
	body := len(e.buf) - 4
	if body > maxFrame {
		return fmt.Errorf("%w: frame body %d exceeds %d", ErrFrame, body, maxFrame)
	}
	binary.BigEndian.PutUint32(e.buf[:4], uint32(body))
	if _, err := e.w.Write(e.buf); err != nil {
		return err
	}
	return nil
}

func appendU16Bytes(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func (e *frameEncoder) writeRequest(r *Request) error {
	code, ok := opCodes[r.Op]
	if !ok {
		// Unknown ops still cross the wire (the server answers with its
		// "unknown op" error) so probing tests behave like the gob codec.
		code = 0
	}
	if len(r.Name) > 0xffff || len(r.To) > 0xffff {
		return fmt.Errorf("%w: path too long", ErrFrame)
	}
	b := append(e.buf[:0], 0, 0, 0, 0) // length backpatched by flushFrame
	b = binary.BigEndian.AppendUint64(b, r.Tag)
	b = append(b, code)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Off))
	b = binary.BigEndian.AppendUint32(b, uint32(int32(r.N)))
	b = appendU16Bytes(b, r.Name)
	b = appendU16Bytes(b, r.To)
	b = append(b, r.Data...)
	e.buf = b
	if err := e.flushFrame(); err != nil {
		return fmt.Errorf("nfs: encoding request: %w", err)
	}
	return nil
}

func (e *frameEncoder) writeResponse(r *Response) error {
	if len(r.Err) > 0xffff {
		r = &Response{Tag: r.Tag, Err: r.Err[:0xffff], Gen: r.Gen, NotExist: r.NotExist, EOF: r.EOF}
	}
	var flags byte
	if r.EOF {
		flags |= flagEOF
	}
	if r.NotExist {
		flags |= flagNotExist
	}
	b := append(e.buf[:0], 0, 0, 0, 0)
	b = binary.BigEndian.AppendUint64(b, r.Tag)
	b = append(b, flags)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Size))
	b = binary.BigEndian.AppendUint64(b, uint64(r.MTimeNs))
	b = binary.BigEndian.AppendUint64(b, r.Gen)
	b = appendU16Bytes(b, r.Err)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Names)))
	for _, n := range r.Names {
		if len(n) > 0xffff {
			return fmt.Errorf("%w: name too long", ErrFrame)
		}
		b = appendU16Bytes(b, n)
	}
	b = append(b, r.Data...)
	e.buf = b
	if err := e.flushFrame(); err != nil {
		return fmt.Errorf("nfs: encoding response: %w", err)
	}
	return nil
}

// frameDecoder reads frames off a buffered connection. The server side
// reuses one grow-only scratch buffer (requests are handled one at a time
// per connection); the client side pulls pooled buffers so many decoded
// responses can be alive at once under pipelining.
type frameDecoder struct {
	r       *bufio.Reader
	lenBuf  [4]byte
	scratch []byte // server-side reuse; nil selects pooled frames
	pooled  bool
}

func newFrameDecoder(r *bufio.Reader, pooled bool) *frameDecoder {
	return &frameDecoder{r: r, pooled: pooled}
}

// readFrame returns the next frame body. With pooling, the returned
// *frameBuf owns the bytes and must be released via putFrame; without, the
// body aliases the decoder's scratch and is valid until the next call.
func (d *frameDecoder) readFrame() ([]byte, *frameBuf, error) {
	if _, err := io.ReadFull(d.r, d.lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return nil, nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, nil, fmt.Errorf("%w: truncated length prefix", ErrFrame)
		}
		return nil, nil, err
	}
	n := binary.BigEndian.Uint32(d.lenBuf[:])
	if n > maxFrame {
		return nil, nil, fmt.Errorf("%w: body length %d exceeds %d", ErrFrame, n, maxFrame)
	}
	var body []byte
	var fb *frameBuf
	if d.pooled {
		fb = getFrame(int(n))
		body = fb.b
	} else {
		if cap(d.scratch) < int(n) {
			d.scratch = make([]byte, n)
		}
		body = d.scratch[:n]
	}
	if _, err := io.ReadFull(d.r, body); err != nil {
		if fb != nil {
			putFrame(fb)
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, nil, fmt.Errorf("%w: truncated body (want %d bytes)", ErrFrame, n)
		}
		return nil, nil, err
	}
	return body, fb, nil
}

// cursor walks a frame body with bounds checking; ok flips false on the
// first short read and stays false.
type cursor struct {
	b  []byte
	ok bool
}

func (c *cursor) u8() byte {
	if !c.ok || len(c.b) < 1 {
		c.ok = false
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u16() uint16 {
	if !c.ok || len(c.b) < 2 {
		c.ok = false
		return 0
	}
	v := binary.BigEndian.Uint16(c.b)
	c.b = c.b[2:]
	return v
}

func (c *cursor) u32() uint32 {
	if !c.ok || len(c.b) < 4 {
		c.ok = false
		return 0
	}
	v := binary.BigEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if !c.ok || len(c.b) < 8 {
		c.ok = false
		return 0
	}
	v := binary.BigEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

func (c *cursor) bytes(n int) []byte {
	if !c.ok || n < 0 || len(c.b) < n {
		c.ok = false
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

// decodeRequest parses a request frame body into r. r.Data aliases body.
func decodeRequest(body []byte, r *Request) error {
	cur := cursor{b: body, ok: true}
	*r = Request{}
	r.Tag = cur.u64()
	code := cur.u8()
	r.Off = int64(cur.u64())
	r.N = int(int32(cur.u32()))
	r.Name = string(cur.bytes(int(cur.u16())))
	r.To = string(cur.bytes(int(cur.u16())))
	if !cur.ok {
		return fmt.Errorf("%w: truncated request header", ErrFrame)
	}
	if int(code) < len(opNames) {
		r.Op = opNames[code]
	}
	if r.Op == "" {
		r.Op = fmt.Sprintf("op#%d", code)
	}
	r.Data = cur.b
	return nil
}

// decodeResponse parses a response frame body into r. r.Data aliases body.
func decodeResponse(body []byte, r *Response) error {
	cur := cursor{b: body, ok: true}
	*r = Response{}
	r.Tag = cur.u64()
	flags := cur.u8()
	r.Size = int64(cur.u64())
	r.MTimeNs = int64(cur.u64())
	r.Gen = cur.u64()
	r.Err = string(cur.bytes(int(cur.u16())))
	nNames := cur.u32()
	if !cur.ok {
		return fmt.Errorf("%w: truncated response header", ErrFrame)
	}
	// Each listed name costs at least its 2-byte length, which bounds the
	// count before any allocation happens.
	if int64(nNames)*2 > int64(len(cur.b)) {
		return fmt.Errorf("%w: name count %d exceeds frame", ErrFrame, nNames)
	}
	if nNames > 0 {
		r.Names = make([]string, 0, nNames)
		for i := uint32(0); i < nNames; i++ {
			r.Names = append(r.Names, string(cur.bytes(int(cur.u16()))))
		}
		if !cur.ok {
			return fmt.Errorf("%w: truncated name list", ErrFrame)
		}
	}
	r.EOF = flags&flagEOF != 0
	r.NotExist = flags&flagNotExist != 0
	r.Data = cur.b
	return nil
}

// binClientCodec is the client end of the binary framing: responses come
// out of pooled frame buffers so a pipelined window of chunk payloads can
// be alive at once without per-RPC allocations.
type binClientCodec struct {
	enc *frameEncoder
	dec *frameDecoder
}

func newBinClientCodec(r io.Reader, w io.Writer) *binClientCodec {
	return &binClientCodec{
		enc: newFrameEncoder(w),
		dec: newFrameDecoder(bufio.NewReaderSize(r, 64<<10), true),
	}
}

func (c *binClientCodec) writeRequest(r *Request) error { return c.enc.writeRequest(r) }

func (c *binClientCodec) readResponse(r *Response) error {
	body, fb, err := c.dec.readFrame()
	if err != nil {
		return err
	}
	if err := decodeResponse(body, r); err != nil {
		if fb != nil {
			putFrame(fb)
		}
		return err
	}
	r.frame = fb
	return nil
}

// binServerCodec is the server end: one scratch buffer per connection,
// reused across requests (the server finishes each request before reading
// the next on that connection).
type binServerCodec struct {
	enc *frameEncoder
	dec *frameDecoder
}

func newBinServerCodec(r *bufio.Reader, w io.Writer) *binServerCodec {
	return &binServerCodec{enc: newFrameEncoder(w), dec: newFrameDecoder(r, false)}
}

func (c *binServerCodec) readRequest(r *Request) error {
	body, _, err := c.dec.readFrame()
	if err != nil {
		return err
	}
	return decodeRequest(body, r)
}

func (c *binServerCodec) writeResponse(r *Response) error { return c.enc.writeResponse(r) }
