package nfs

import (
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mcsd/internal/metrics"
)

// startCachedServer spins up a server and returns a caching FS over a
// connected client, plus the server (for wire-byte counters) and root.
func startCachedServer(t *testing.T, cacheBytes int64) (*CachedFS, *Server, string) {
	t.Helper()
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { ln.Close(); srv.Shutdown() })
	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return NewCachedFS(c, NewBlockCache(cacheBytes, nil)), srv, root
}

func cacheCounter(t *testing.T, cfs *CachedFS, name string) int64 {
	t.Helper()
	return cfs.Cache().Metrics().Counter(name).Value()
}

// TestCachedWarmReadAvoidsWire is the block-cache contract: a warm re-read
// returns identical bytes while moving zero data bytes over the wire (the
// revalidation Stat is metadata only).
func TestCachedWarmReadAvoidsWire(t *testing.T) {
	cfs, srv, _ := startCachedServer(t, DefaultCacheBytes)
	payload := bytes.Repeat([]byte("warmth"), 40000) // ~240 KB, one chunk
	if err := cfs.WriteFile("w.dat", payload); err != nil {
		t.Fatal(err)
	}
	cold, err := cfs.ReadFile("w.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, payload) {
		t.Fatal("cold read returned wrong bytes")
	}
	wireBefore := srv.Metrics().Counter(metrics.NFSBytesRead).Value()
	hitsBefore := cacheCounter(t, cfs, metrics.NFSCacheHits)
	warm, err := cfs.ReadFile("w.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warm, payload) {
		t.Fatal("warm read returned wrong bytes")
	}
	if delta := srv.Metrics().Counter(metrics.NFSBytesRead).Value() - wireBefore; delta != 0 {
		t.Fatalf("warm read moved %d data bytes over the wire, want 0", delta)
	}
	if cacheCounter(t, cfs, metrics.NFSCacheHits) <= hitsBefore {
		t.Fatal("warm read did not count a cache hit")
	}
}

// TestCachedMultiChunkReadAssembles covers the block-granular path: a file
// spanning several MaxChunk blocks reads correctly cold and warm, including
// via the streaming reader.
func TestCachedMultiChunkReadAssembles(t *testing.T) {
	cfs, srv, root := startCachedServer(t, DefaultCacheBytes)
	payload := make([]byte, 2*MaxChunk+12345)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := os.WriteFile(filepath.Join(root, "big.dat"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	cold, err := cfs.ReadFile("big.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, payload) {
		t.Fatal("cold multi-chunk read mismatch")
	}
	wireBefore := srv.Metrics().Counter(metrics.NFSBytesRead).Value()
	r, err := cfs.OpenReader("big.dat")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if !bytes.Equal(warm, payload) {
		t.Fatal("warm streaming read mismatch")
	}
	if delta := srv.Metrics().Counter(metrics.NFSBytesRead).Value() - wireBefore; delta != 0 {
		t.Fatalf("warm streaming read moved %d data bytes over the wire, want 0", delta)
	}
}

// TestCacheInvalidatedByLocalMutation checks every local write path drops
// the cached blocks so the next read sees the new bytes.
func TestCacheInvalidatedByLocalMutation(t *testing.T) {
	cfs, _, _ := startCachedServer(t, DefaultCacheBytes)
	if err := cfs.WriteFile("m.dat", []byte("before")); err != nil {
		t.Fatal(err)
	}
	if _, err := cfs.ReadFile("m.dat"); err != nil {
		t.Fatal(err)
	}
	if err := cfs.Append("m.dat", []byte("+after")); err != nil {
		t.Fatal(err)
	}
	got, err := cfs.ReadFile("m.dat")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "before+after" {
		t.Fatalf("read after append = %q, want %q", got, "before+after")
	}
	if n := cacheCounter(t, cfs, metrics.NFSCacheInvalidations); n < 1 {
		t.Fatalf("invalidations = %d, want >= 1", n)
	}

	// Rename must drop both names.
	if err := cfs.Rename("m.dat", "m2.dat"); err != nil {
		t.Fatal(err)
	}
	got, err = cfs.ReadFile("m2.dat")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "before+after" {
		t.Fatalf("read after rename = %q", got)
	}
	if err := cfs.Remove("m2.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := cfs.ReadFile("m2.dat"); err == nil {
		t.Fatal("read of removed file served stale cache data")
	}
}

// TestCacheRevalidatesOnExternalChange models another host mutating the
// share behind the cache's back: the version check (size, mtime) must spot
// the change and refetch instead of serving stale blocks.
func TestCacheRevalidatesOnExternalChange(t *testing.T) {
	cfs, _, root := startCachedServer(t, DefaultCacheBytes)
	if err := os.WriteFile(filepath.Join(root, "x.dat"), []byte("generation-one"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := cfs.ReadFile("x.dat")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "generation-one" {
		t.Fatalf("first read = %q", got)
	}
	// Out-of-band mutation (different size so the version cannot collide
	// even on a coarse-mtime filesystem).
	if err := os.WriteFile(filepath.Join(root, "x.dat"), []byte("generation-two-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = cfs.ReadFile("x.dat")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "generation-two-longer" {
		t.Fatalf("read after external change = %q, served stale cache", got)
	}
}

// TestCacheEvictsUnderPressure bounds memory: filling a small cache must
// evict least-recently-used blocks, never exceed capacity, and keep
// serving correct bytes.
func TestCacheEvictsUnderPressure(t *testing.T) {
	const capBytes = 3000
	cfs, _, root := startCachedServer(t, capBytes)
	files := []string{"a.dat", "b.dat", "c.dat", "d.dat"}
	for i, name := range files {
		content := bytes.Repeat([]byte{byte('A' + i)}, 1000)
		if err := os.WriteFile(filepath.Join(root, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, name := range files {
		got, err := cfs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte('A' + i)}, 1000)) {
			t.Fatalf("%s: wrong content", name)
		}
	}
	if used := cfs.Cache().Used(); used > capBytes {
		t.Fatalf("cache used %d bytes, capacity %d", used, capBytes)
	}
	if n := cacheCounter(t, cfs, metrics.NFSCacheEvictions); n < 1 {
		t.Fatalf("evictions = %d, want >= 1 after overfilling", n)
	}
	// Evicted entries still read correctly (as misses).
	got, err := cfs.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{'A'}, 1000)) {
		t.Fatal("re-read of evicted file returned wrong bytes")
	}
}

// TestCachedReadAtPartialWindow reads unaligned spans through the cache.
func TestCachedReadAtPartialWindow(t *testing.T) {
	cfs, _, root := startCachedServer(t, DefaultCacheBytes)
	payload := make([]byte, MaxChunk+5000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	if err := os.WriteFile(filepath.Join(root, "p.dat"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, span := range []struct{ off, n int64 }{
		{0, 100}, {int64(MaxChunk) - 50, 100}, {int64(MaxChunk), 5000}, {int64(len(payload)) - 10, 10},
	} {
		buf := make([]byte, span.n)
		n, err := cfs.ReadAt("p.dat", buf, span.off)
		if err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d,%d): %v", span.off, span.n, err)
		}
		if int64(n) != span.n || !bytes.Equal(buf[:n], payload[span.off:span.off+int64(n)]) {
			t.Fatalf("ReadAt(%d,%d): got %d bytes, mismatch", span.off, span.n, n)
		}
	}
	// A read past EOF reports io.EOF with the served prefix.
	buf := make([]byte, 100)
	n, err := cfs.ReadAt("p.dat", buf, int64(len(payload))-20)
	if n != 20 || err != io.EOF {
		t.Fatalf("tail read = (%d, %v), want (20, EOF)", n, err)
	}
}
