package nfs

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMultiChunkAppendCommitsAtomically drives the staged append path (a
// payload larger than MaxChunk) and checks the target lands as exactly
// old-bytes + new-bytes, with the staging temp gone afterwards.
func TestMultiChunkAppendCommitsAtomically(t *testing.T) {
	c, root := startServer(t)
	if err := c.WriteFile("log.bin", []byte("HEAD|")); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 2*MaxChunk+777)
	for i := range big {
		big[i] = byte(i * 11)
	}
	if err := c.Append("log.bin", big); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(root, "log.bin"))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("HEAD|"), big...)
	if !bytes.Equal(got, want) {
		t.Fatalf("staged append produced %d bytes, want %d (content mismatch: %v)",
			len(got), len(want), !bytes.Equal(got[:5], want[:5]))
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if isStagingTemp(e.Name()) {
			t.Fatalf("staging temp %s left behind after commit", e.Name())
		}
	}
}

// TestMultiChunkWriteFileReplaces drives the staged whole-file path: the
// target must hold exactly the new payload, not a torn mix.
func TestMultiChunkWriteFileReplaces(t *testing.T) {
	c, root := startServer(t)
	if err := c.WriteFile("w.bin", bytes.Repeat([]byte("old"), 100)); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, MaxChunk+4096)
	for i := range big {
		big[i] = byte(i * 3)
	}
	if err := c.WriteFile("w.bin", big); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(root, "w.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("staged write produced %d bytes, want %d", len(got), len(big))
	}
}

// TestListNeverShowsStagingTemps polls List while a staged multi-chunk
// append is in flight: the in-progress temp must stay invisible to other
// share users, before, during and after the commit.
func TestListNeverShowsStagingTemps(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { ln.Close(); srv.Shutdown() })
	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	observer, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer observer.Close()

	var done atomic.Bool
	errCh := make(chan error, 1)
	go func() {
		defer done.Store(true)
		errCh <- c.Append("big.log", make([]byte, 4*MaxChunk))
	}()
	for !done.Load() {
		names, err := observer.List()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			if strings.Contains(n, ".append-") || strings.HasSuffix(n, ".tmp") {
				t.Fatalf("List exposed staging temp %q mid-append", n)
			}
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	names, err := observer.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "big.log" {
		t.Fatalf("List after commit = %v, want [big.log]", names)
	}
}

// TestCommitWithoutStagingLeavesTargetUntouched simulates a client that
// died before uploading its staging file: the commit fails and the target
// keeps its prior bytes — the failure mode the old in-place chunk loop
// could not guarantee.
func TestCommitWithoutStagingLeavesTargetUntouched(t *testing.T) {
	c, root := startServer(t)
	if err := c.WriteFile("t.log", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	_, err := c.call(&Request{Op: OpCommit, Name: "t.log.append-gone.tmp", To: "t.log", N: CommitAppend})
	if err == nil {
		t.Fatal("commit of a missing staging file succeeded")
	}
	got, err := os.ReadFile(filepath.Join(root, "t.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "intact" {
		t.Fatalf("target mutated by failed commit: %q", got)
	}
}

// TestInterruptedStagedAppendLeavesTargetUntouched kills the connection
// mid-stage: the target file never sees a partial suffix because no commit
// ran; the orphaned temp stays hidden from List.
func TestInterruptedStagedAppendLeavesTargetUntouched(t *testing.T) {
	c, root := startServer(t)
	if err := c.WriteFile("t.log", []byte("original")); err != nil {
		t.Fatal(err)
	}
	// Plant an orphan staging temp, as a crashed transfer would leave.
	orphan := filepath.Join(root, "t.log.append-deadbeef.tmp")
	if err := os.WriteFile(orphan, bytes.Repeat([]byte{0xFF}, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("t.log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("target = %q, want untouched %q", got, "original")
	}
	names, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if isStagingTemp(n) {
			t.Fatalf("List exposed orphan staging temp %q", n)
		}
	}
}
