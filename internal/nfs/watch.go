package nfs

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"mcsd/internal/smartfam"
)

// The client side of the notify lane: Watch implements smartfam.WatchFS by
// registering one server-side watch per connection (prefix "", i.e.
// everything) and fanning the unsolicited NotifyTag frames out to local
// per-prefix streams. Keeping the server registration maximal means any
// number of local subscriptions share one OpWatch and the demux filters by
// prefix locally.
//
// Stream-loss semantics: when the connection fails (or the client closes),
// every local stream's channel is closed. Consumers treat the close as
// "fall back to polling, then re-Watch"; the next Watch call re-arms the
// server registration on the redialed connection.

// watchStreamDepth bounds each local stream's event buffer; like the
// server's queue, a full buffer drops (the consumer rescans from its own
// offset, so a drop is a latency hiccup, not data loss).
const watchStreamDepth = 256

// clientWatch is one local subscription.
type clientWatch struct {
	c      *Client
	prefix string
	ch     chan smartfam.WatchEvent
	closed bool // guarded by c.watchMu
}

// Events implements smartfam.WatchStream.
func (w *clientWatch) Events() <-chan smartfam.WatchEvent { return w.ch }

// Close implements smartfam.WatchStream.
func (w *clientWatch) Close() error {
	c := w.c
	c.watchMu.Lock()
	if !w.closed {
		w.closed = true
		delete(c.watches, w)
		close(w.ch)
	}
	c.watchMu.Unlock()
	return nil
}

// Watch implements smartfam.WatchFS: it subscribes to change notifications
// for files whose share-relative name starts with prefix. The legacy gob
// codec has no notify lane, so a WireGob client refuses locally with
// ErrWatchUnsupported (and a pre-watch or gob-forced server turns the RPC
// into the same error), letting callers fall back to polling.
func (c *Client) Watch(prefix string) (smartfam.WatchStream, error) {
	c.mu.Lock()
	gob := c.wire == WireGob
	c.mu.Unlock()
	if gob {
		return nil, fmt.Errorf("%w: legacy gob codec", ErrWatchUnsupported)
	}
	if err := c.armWatch(); err != nil {
		return nil, err
	}
	w := &clientWatch{c: c, prefix: prefix, ch: make(chan smartfam.WatchEvent, watchStreamDepth)}
	c.watchMu.Lock()
	if c.watches == nil {
		c.watches = make(map[*clientWatch]struct{})
	}
	c.watches[w] = struct{}{}
	c.watchMu.Unlock()
	return w, nil
}

// armWatch ensures the current connection carries a live server-side watch
// registration, issuing the OpWatch RPC when the connection (generation)
// has changed since the last registration.
func (c *Client) armWatch() error {
	c.mu.Lock()
	gen := c.gen
	live := c.conn != nil
	c.mu.Unlock()
	c.watchMu.Lock()
	armed := c.watchArmed && live && c.watchGen == gen
	c.watchMu.Unlock()
	if armed {
		return nil
	}
	// Watch everything server-side; local streams filter by prefix.
	if err := c.doDiscard(&Request{Op: OpWatch}, false); err != nil {
		if errors.Is(err, ErrRemote) {
			return fmt.Errorf("%w: %v", ErrWatchUnsupported, err)
		}
		return err
	}
	c.mu.Lock()
	gen = c.gen
	c.mu.Unlock()
	c.watchMu.Lock()
	c.watchArmed, c.watchGen = true, gen
	c.watchMu.Unlock()
	return nil
}

// deliverNotify routes one NotifyTag frame to every matching local stream.
// Called from the demux goroutine; the frame is freed here.
func (c *Client) deliverNotify(resp *Response) {
	var name string
	if len(resp.Names) > 0 {
		name = resp.Names[0]
	}
	gen := resp.Gen
	resp.free()
	if name == "" {
		return
	}
	c.met.watchEvents.Inc()
	c.watchMu.Lock()
	for w := range c.watches {
		if !strings.HasPrefix(name, w.prefix) {
			continue
		}
		select {
		case w.ch <- smartfam.WatchEvent{Name: name, Gen: gen}:
		default:
			// Consumer lagging: drop, like the polling Watcher does. The
			// consumer re-reads from its own offset.
		}
	}
	c.watchMu.Unlock()
}

// closeWatches tears down every local stream (connection lost or client
// closed); consumers observe the channel close and fall back to polling.
func (c *Client) closeWatches() {
	c.watchMu.Lock()
	ws := c.watches
	c.watches = nil
	c.watchArmed = false
	for w := range ws {
		w.closed = true
		close(w.ch)
	}
	c.watchMu.Unlock()
}

// StatGen implements smartfam.GenStat: Stat plus the server's change
// generation for the file (0 from servers that never mutated it, or from
// mutations that bypassed the server).
func (c *Client) StatGen(name string) (int64, time.Time, uint64, error) {
	resp, err := c.do(&Request{Op: OpStat, Name: name}, true)
	if err != nil {
		return 0, time.Time{}, 0, err
	}
	size, mtime, gen := resp.Size, time.Unix(0, resp.MTimeNs), resp.Gen
	resp.free()
	return size, mtime, gen, nil
}

var (
	_ smartfam.WatchFS = (*Client)(nil)
	_ smartfam.GenStat = (*Client)(nil)
)
