package nfs

//mcsdlint:fsboundary -- the server side of the share: it implements the exported directory, it cannot route through an FS client of itself

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mcsd/internal/metrics"
)

// Server exports a local directory over the wire — the SD node's NFS-server
// role in the testbed ("the McSD node is configured as an NFS server",
// §III-B).
//
// Each connection's framing is auto-detected from its first byte: binary
// frames always start with 0x00 (the high byte of a length below 16 MB),
// gob streams never do (their first byte is a nonzero varint). SetGobOnly
// forces the legacy codec for rollback.
//
// Beyond request/response the server keeps two pieces of change-tracking
// state for the push-mode invocation path: a per-file change generation
// (monotonic, bumped by every mutating op, reported in OpStat replies so
// pollers can detect size+mtime-reverting rewrites) and a watch registry
// (OpWatch registers a prefix watch; every mutation streams a notify frame
// on the NotifyTag lane to each matching watcher). Only mutations that
// pass through this server are seen — out-of-band writes to the exported
// directory fall back on the watchers' own rescan sweeps.
type Server struct {
	root    string
	metrics *metrics.Registry

	mu       sync.Mutex
	applock  sync.Mutex // serializes appends/commits for cross-client atomicity
	conns    map[net.Conn]struct{}
	gens     map[string]uint64 // per-file change generation (cleaned name)
	watchers map[*connWatcher]struct{}
	closed   bool
	gobOnly  bool
}

// watchQueueDepth bounds each watcher's pending-notify queue. A full queue
// drops the notify (counted in nfs.watch.dropped) rather than blocking the
// mutating request; the consumer's rescan sweep recovers the change.
const watchQueueDepth = 256

// notifyEvt is one queued change notification.
type notifyEvt struct {
	name string
	gen  uint64
}

// connWatcher is one connection's watch registration: a prefix filter plus
// a bounded queue drained by a dedicated sender goroutine (notify frames
// must interleave with the serve loop's response frames under the
// connection's write lock, never block a mutating request).
type connWatcher struct {
	prefix string // guarded by Server.mu
	queue  chan notifyEvt
	done   chan struct{}
}

// NewServer returns a server exporting root.
func NewServer(root string) *Server {
	return &Server{
		root:     root,
		metrics:  metrics.NewRegistry(),
		conns:    make(map[net.Conn]struct{}),
		gens:     make(map[string]uint64),
		watchers: make(map[*connWatcher]struct{}),
	}
}

// Metrics returns the server's metrics registry (bytes served, ops).
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// SetGobOnly forces every connection through the legacy gob codec,
// disabling binary-frame auto-detection (a rollback escape hatch while the
// framing change shakes out). Call before Serve.
func (s *Server) SetGobOnly(on bool) {
	s.mu.Lock()
	s.gobOnly = on
	s.mu.Unlock()
}

// Serve accepts connections on ln until ln is closed or Shutdown is called.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("nfs: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		//mcsdlint:allow goroleak -- serveConn exits when its conn closes; the conn was just tracked in s.conns, and Shutdown closes every tracked conn
		go s.serveConn(conn)
	}
}

// Shutdown closes every live connection. The caller closes the listener.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) serveConn(conn net.Conn) {
	var watcher *connWatcher
	defer func() {
		if watcher != nil {
			s.dropWatcher(watcher)
		}
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	s.mu.Lock()
	gobOnly := s.gobOnly
	s.mu.Unlock()
	binary := first[0] == 0x00 && !gobOnly
	var c serverCodec
	if binary {
		c = newBinServerCodec(br, conn)
	} else {
		c = newGobCodec(br, conn)
	}
	// Responses and notify frames share the connection; once a watch is
	// registered its sender goroutine interleaves frames with this loop, so
	// every write goes through writeMu.
	var writeMu sync.Mutex
	for {
		var req Request
		if err := c.readRequest(&req); err != nil {
			return // io.EOF on clean close; anything else also ends the conn
		}
		var resp *Response
		if req.Op == OpWatch {
			resp, watcher = s.handleWatch(&req, watcher, c, &writeMu, binary)
		} else {
			resp = s.handle(&req)
		}
		resp.Tag = req.Tag // correlate on the client's pipelined demux
		writeMu.Lock()
		err := c.writeResponse(resp)
		writeMu.Unlock()
		if err != nil {
			return
		}
	}
}

// handleWatch registers (or re-aims) the connection's prefix watch and
// starts its notify sender. The gob codec has no reserved notify lane, so
// legacy connections are refused and fall back to polling client-side.
func (s *Server) handleWatch(req *Request, cur *connWatcher, c serverCodec, writeMu *sync.Mutex, binary bool) (*Response, *connWatcher) {
	s.metrics.Counter(metrics.NFSOpPrefix + OpWatch).Inc()
	if !binary {
		return &Response{Err: "nfs: watch requires the binary wire framing"}, cur
	}
	if cur != nil {
		// Re-registration on the same connection just re-aims the prefix.
		s.mu.Lock()
		cur.prefix = req.Name
		s.mu.Unlock()
		return &Response{}, cur
	}
	w := &connWatcher{
		prefix: req.Name,
		queue:  make(chan notifyEvt, watchQueueDepth),
		done:   make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return &Response{Err: "nfs: server shutting down"}, cur
	}
	s.watchers[w] = struct{}{}
	s.mu.Unlock()
	s.metrics.Gauge(metrics.NFSWatchStreams).Add(1)
	//mcsdlint:allow goroleak -- the sender exits when serveConn's deferred dropWatcher closes w.done (or its conn write fails); the watcher was just registered under s.mu
	go s.runWatcher(w, c, writeMu)
	return &Response{}, w
}

// dropWatcher unregisters a watch and stops its sender.
func (s *Server) dropWatcher(w *connWatcher) {
	s.mu.Lock()
	delete(s.watchers, w)
	s.mu.Unlock()
	close(w.done)
	s.metrics.Gauge(metrics.NFSWatchStreams).Add(-1)
}

// runWatcher drains one watch registration's queue into notify frames on
// the connection. A write failure just stops the sender: the connection is
// dying and serveConn's read side will tear the registration down.
func (s *Server) runWatcher(w *connWatcher, c serverCodec, writeMu *sync.Mutex) {
	for {
		select {
		case <-w.done:
			return
		case ev := <-w.queue:
			writeMu.Lock()
			err := c.writeResponse(&Response{Tag: NotifyTag, Names: []string{ev.name}, Gen: ev.gen})
			writeMu.Unlock()
			if err != nil {
				return
			}
			s.metrics.Counter(metrics.NFSWatchNotifies).Inc()
		}
	}
}

// touch records a successful mutation of name: the file's change
// generation advances and every matching watcher is queued a notify.
// Staging temps stay invisible here just as they do in List.
func (s *Server) touch(name string) {
	clean, err := cleanName(name)
	if err != nil {
		return
	}
	base := clean
	if i := strings.LastIndexByte(clean, '/'); i >= 0 {
		base = clean[i+1:]
	}
	if isStagingTemp(base) {
		return
	}
	s.mu.Lock()
	s.gens[clean]++
	gen := s.gens[clean]
	var targets []*connWatcher
	for w := range s.watchers {
		if strings.HasPrefix(clean, w.prefix) {
			targets = append(targets, w)
		}
	}
	s.mu.Unlock()
	for _, w := range targets {
		select {
		case w.queue <- notifyEvt{name: clean, gen: gen}:
		default:
			// Full queue: drop rather than stall the mutating request. The
			// watcher's rescan sweep recovers the change.
			s.metrics.Counter(metrics.NFSWatchDropped).Inc()
		}
	}
}

// gen reads a file's current change generation (0 if never mutated through
// this server).
func (s *Server) gen(name string) uint64 {
	clean, err := cleanName(name)
	if err != nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gens[clean]
}

func (s *Server) path(name string) (string, error) {
	clean, err := cleanName(name)
	if err != nil {
		return "", err
	}
	return filepath.Join(s.root, filepath.FromSlash(clean)), nil
}

func fail(err error) *Response {
	return &Response{Err: err.Error(), NotExist: errors.Is(err, os.ErrNotExist)}
}

func (s *Server) handle(req *Request) *Response {
	s.metrics.Counter(metrics.NFSOpPrefix + req.Op).Inc()
	switch req.Op {
	case OpPing:
		return &Response{}
	case OpCreate:
		return s.handleCreate(req)
	case OpAppend:
		return s.handleAppend(req)
	case OpReadAt:
		return s.handleReadAt(req)
	case OpStat:
		return s.handleStat(req)
	case OpList:
		return s.handleList(req)
	case OpRemove:
		return s.handleRemove(req)
	case OpRename:
		return s.handleRename(req)
	case OpWrite:
		return s.handleWrite(req)
	case OpCommit:
		return s.handleCommit(req)
	case OpSum:
		return s.handleSum(req)
	default:
		return &Response{Err: fmt.Sprintf("nfs: unknown op %q", req.Op)}
	}
}

func (s *Server) handleCreate(req *Request) *Response {
	p, err := s.path(req.Name)
	if err != nil {
		return fail(err)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fail(err)
	}
	f, err := os.Create(p)
	if err != nil {
		return fail(err)
	}
	f.Close()
	s.touch(req.Name)
	return &Response{}
}

func (s *Server) handleAppend(req *Request) *Response {
	if len(req.Data) > MaxChunk {
		return &Response{Err: "nfs: append exceeds MaxChunk"}
	}
	p, err := s.path(req.Name)
	if err != nil {
		return fail(err)
	}
	// Cross-connection append atomicity for smartFAM logs.
	s.applock.Lock()
	defer s.applock.Unlock()
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(err)
	}
	defer f.Close()
	if _, err := f.Write(req.Data); err != nil {
		return fail(err)
	}
	s.metrics.Counter(metrics.NFSBytesWritten).Add(int64(len(req.Data)))
	s.touch(req.Name)
	return &Response{}
}

func (s *Server) handleReadAt(req *Request) *Response {
	p, err := s.path(req.Name)
	if err != nil {
		return fail(err)
	}
	n := req.N
	if n <= 0 || n > MaxChunk {
		n = MaxChunk
	}
	f, err := os.Open(p)
	if err != nil {
		return fail(err)
	}
	defer f.Close()
	buf := make([]byte, n)
	read, err := f.ReadAt(buf, req.Off)
	resp := &Response{Data: buf[:read], EOF: errors.Is(err, io.EOF)}
	if err != nil && !errors.Is(err, io.EOF) {
		return fail(err)
	}
	s.metrics.Counter(metrics.NFSBytesRead).Add(int64(read))
	return resp
}

// handleSum checksums up to N bytes of the file at Off server-side — the
// remote half of scrub verification: the host compares per-chunk CRC32s
// against a locally verified copy without dragging the replica's bytes
// over the wire. The response carries the CRC in Size and the number of
// bytes actually summed in MTimeNs (EOF set when the range hit the end),
// so the client walks a file chunk by chunk like ReadAt.
func (s *Server) handleSum(req *Request) *Response {
	p, err := s.path(req.Name)
	if err != nil {
		return fail(err)
	}
	n := req.N
	if n <= 0 || n > MaxChunk {
		n = MaxChunk
	}
	f, err := os.Open(p)
	if err != nil {
		return fail(err)
	}
	defer f.Close()
	buf := make([]byte, n)
	read, err := f.ReadAt(buf, req.Off)
	if err != nil && !errors.Is(err, io.EOF) {
		return fail(err)
	}
	return &Response{
		Size:    int64(crc32.ChecksumIEEE(buf[:read])),
		MTimeNs: int64(read),
		EOF:     errors.Is(err, io.EOF),
	}
}

func (s *Server) handleStat(req *Request) *Response {
	p, err := s.path(req.Name)
	if err != nil {
		return fail(err)
	}
	fi, err := os.Stat(p)
	if err != nil {
		return fail(err)
	}
	// The change generation rides along so pollers can catch rewrites that
	// restore size and mtime within one poll window (the Watcher ABA case).
	return &Response{Size: fi.Size(), MTimeNs: fi.ModTime().UnixNano(), Gen: s.gen(req.Name)}
}

func (s *Server) handleList(req *Request) *Response {
	dir := s.root
	if req.Name != "" {
		p, err := s.path(req.Name)
		if err != nil {
			return fail(err)
		}
		dir = p
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fail(err)
	}
	var names []string
	for _, e := range entries {
		// Staging temps (client-side multi-chunk append/write commits in
		// progress, or orphans from a crashed transfer) stay invisible.
		if e.IsDir() || isStagingTemp(e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return &Response{Names: names}
}

func (s *Server) handleRemove(req *Request) *Response {
	p, err := s.path(req.Name)
	if err != nil {
		return fail(err)
	}
	if err := os.Remove(p); err != nil {
		return fail(err)
	}
	s.touch(req.Name)
	return &Response{}
}

func (s *Server) handleRename(req *Request) *Response {
	from, err := s.path(req.Name)
	if err != nil {
		return fail(err)
	}
	to, err := s.path(req.To)
	if err != nil {
		return fail(err)
	}
	if err := os.Rename(from, to); err != nil {
		return fail(err)
	}
	s.touch(req.Name)
	s.touch(req.To)
	return &Response{}
}

// isStagingTemp reports whether name is a client staging file for a
// multi-chunk append/write commit.
func isStagingTemp(name string) bool {
	return strings.HasSuffix(name, ".tmp") && strings.Contains(name, ".append-")
}

// handleCommit splices a staged temp file onto its target in one atomic
// step under the append lock: CommitReplace renames it over the target,
// CommitAppend copies it onto the target's tail server-side (no data
// re-crosses the wire) and removes it. Either way the target goes from
// old-state to fully-committed with no observable torn intermediate.
func (s *Server) handleCommit(req *Request) *Response {
	src, err := s.path(req.Name)
	if err != nil {
		return fail(err)
	}
	dst, err := s.path(req.To)
	if err != nil {
		return fail(err)
	}
	s.applock.Lock()
	defer s.applock.Unlock()
	if req.N == CommitReplace {
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return fail(err)
		}
		if err := os.Rename(src, dst); err != nil {
			return fail(err)
		}
		s.touch(req.To)
		return &Response{}
	}
	in, err := os.Open(src)
	if err != nil {
		return fail(err)
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(err)
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return fail(err)
	}
	if err := out.Close(); err != nil {
		return fail(err)
	}
	os.Remove(src) //nolint:errcheck // staging file: best-effort cleanup
	s.touch(req.To)
	return &Response{}
}

func (s *Server) handleWrite(req *Request) *Response {
	if len(req.Data) > MaxChunk {
		return &Response{Err: "nfs: write exceeds MaxChunk; use Create+Append"}
	}
	p, err := s.path(req.Name)
	if err != nil {
		return fail(err)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fail(err)
	}
	if err := os.WriteFile(p, req.Data, 0o644); err != nil {
		return fail(err)
	}
	s.metrics.Counter(metrics.NFSBytesWritten).Add(int64(len(req.Data)))
	s.touch(req.Name)
	return &Response{}
}
