package nfs

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/smartfam"
)

// startFamTestbed wires the fam v2 topology end to end: an nfs server over
// a temp dir and a daemon whose share I/O runs through a LOOPBACK client
// of that server (so its response appends notify watchers). It returns the
// server address for host connections plus the daemon's registry.
func startFamTestbed(t *testing.T, daemonOpts ...smartfam.DaemonOption) (string, *metrics.Registry) {
	t.Helper()
	srv := NewServer(t.TempDir())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() {
		ln.Close()
		srv.Shutdown()
	})

	dconn, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dconn.Close() })
	reg := smartfam.NewRegistry(dconn)
	echo := smartfam.ModuleFunc{
		ModuleName: "echo",
		Fn: func(_ context.Context, p []byte) ([]byte, error) {
			return p, nil
		},
	}
	if err := reg.Register(echo); err != nil {
		t.Fatal(err)
	}
	d := smartfam.NewDaemon(dconn, reg, append([]smartfam.DaemonOption{
		smartfam.WithWorkers(4),
		smartfam.WithPollInterval(time.Millisecond),
	}, daemonOpts...)...)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return ln.Addr().String(), d.Metrics()
}

// famHostClient dials a host-side smartfam client on its own connection.
func famHostClient(t *testing.T, addr string, wire Wire) (*smartfam.Client, *metrics.Registry) {
	t.Helper()
	hconn, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hconn.Close() })
	hconn.SetWire(wire)
	hostMetrics := metrics.NewRegistry()
	hc := smartfam.NewClient(hconn, time.Millisecond)
	hc.SetMetrics(hostMetrics)
	return hc, hostMetrics
}

// famInvokeAll fires calls concurrent echo invocations and fails the test
// on any error or payload mismatch.
func famInvokeAll(t *testing.T, hc *smartfam.Client, calls int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			want := fmt.Sprintf("payload-%d", i)
			out, err := hc.Invoke(ctx, "echo", []byte(want))
			if err != nil {
				errs <- err
				return
			}
			if string(out) != want {
				errs <- fmt.Errorf("call %d: got %q", i, out)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFamPushEndToEnd drives concurrent invocations through the complete
// push topology — host group commit, server notify lane, daemon loopback
// push, daemon response batching — and pins that the push path (not the
// polling fallback) carried them.
func TestFamPushEndToEnd(t *testing.T) {
	addr, daemonMetrics := startFamTestbed(t,
		smartfam.WithResponseBatching(0, 0)) // defaults
	hc, hostMetrics := famHostClient(t, addr, WireBinary)
	hc.SetBatching(0, 0) // defaults

	const calls = 32
	famInvokeAll(t, hc, calls)

	if v := daemonMetrics.Gauge(metrics.FamPushActive).Value(); v != 1 {
		t.Fatalf("daemon push_active = %d, want 1", v)
	}
	if v := daemonMetrics.Counter(metrics.FamPushEvents).Value(); v == 0 {
		t.Fatal("daemon served zero push events; the polling fallback carried the load")
	}
	if v := hostMetrics.Counter(metrics.FamPushEvents).Value(); v == 0 {
		t.Fatal("host routed zero push events; responses arrived by polling")
	}
	flushes := daemonMetrics.Counter(metrics.FamRespFlushes).Value()
	records := daemonMetrics.Counter(metrics.FamRespRecords).Value()
	if flushes == 0 || records != calls {
		t.Fatalf("response batching: %d flushes carrying %d records, want >0 carrying %d",
			flushes, records, calls)
	}
	if v := hostMetrics.Counter(metrics.FamBatchFlushes).Value(); v == 0 {
		t.Fatal("host group commit never flushed")
	}
	if v := hostMetrics.Counter(metrics.FamBatchRecords).Value(); v != calls {
		t.Fatalf("host batched %d records, want %d", v, calls)
	}
}

// TestFamGobFallsBackToPolling pins the fallback matrix's legacy row end
// to end: a host on the gob wire cannot push, yet invocations complete
// through the classic append-then-poll path, with zero push events routed.
func TestFamGobFallsBackToPolling(t *testing.T) {
	addr, _ := startFamTestbed(t)
	hc, hostMetrics := famHostClient(t, addr, WireGob)
	famInvokeAll(t, hc, 8)
	if v := hostMetrics.Counter(metrics.FamPushEvents).Value(); v != 0 {
		t.Fatalf("gob host routed %d push events, want 0", v)
	}
}
