package nfs

import (
	"errors"
	"net"
	"testing"
	"time"

	"mcsd/internal/faultfs"
	"mcsd/internal/smartfam"
)

// Server restart mid-session: the in-flight call fails with the typed
// retryable ErrDisconnected, and the next call transparently redials.
func TestClientReconnectsAfterServerRestart(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln) //nolint:errcheck

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRedialBackoff(time.Millisecond, 10*time.Millisecond)
	if err := c.WriteFile("f", []byte("before restart")); err != nil {
		t.Fatal(err)
	}

	// Kill the server under the client.
	ln.Close()
	srv.Shutdown()
	if _, err := c.ReadFile("f"); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("call over dead server: err = %v, want ErrDisconnected", err)
	}

	// Restart on the SAME address (same export) and let the client redial.
	srv2 := NewServer(root)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go srv2.Serve(ln2) //nolint:errcheck
	defer srv2.Shutdown()

	deadline := time.Now().Add(10 * time.Second)
	for {
		data, err := c.ReadFile("f")
		if err == nil {
			if string(data) != "before restart" {
				t.Fatalf("post-reconnect read = %q", data)
			}
			break
		}
		if !errors.Is(err, ErrDisconnected) {
			t.Fatalf("unexpected error while reconnecting: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if c.Reconnects() < 1 {
		t.Fatalf("Reconnects() = %d, want >= 1", c.Reconnects())
	}
}

// Backoff: while the server stays down, redials are rate-limited — calls
// inside the window fail fast with ErrDisconnected without dialing.
func TestClientRedialBackoffWindow(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln) //nolint:errcheck

	dials := make(chan struct{}, 64)
	c, err := Dial(addr, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRedialBackoff(time.Hour, time.Hour) // one failed dial, then a long gate
	c.SetRedial(func() (net.Conn, error) {
		dials <- struct{}{}
		return net.DialTimeout("tcp", addr, 100*time.Millisecond)
	})

	ln.Close()
	srv.Shutdown()
	// First call: in-flight failure, connection dropped, no dial yet.
	if err := c.Ping(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
	// Second call: one redial attempt (fails, server gone), arming backoff.
	// Subsequent calls must NOT dial again inside the window.
	for i := 0; i < 5; i++ {
		if err := c.Ping(); !errors.Is(err, ErrDisconnected) {
			t.Fatalf("call %d: err = %v, want ErrDisconnected", i, err)
		}
	}
	if n := len(dials); n != 1 {
		t.Fatalf("redial attempted %d times inside backoff window, want 1", n)
	}
}

// A client handed a raw conn (NewClient, no redial function) stays
// disconnected once the conn dies.
func TestClientWithoutRedialStaysDisconnected(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	srv.Shutdown()
	if err := c.Ping(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
	// And it stays that way: no redial function, no recovery.
	for i := 0; i < 3; i++ {
		if err := c.Ping(); !errors.Is(err, ErrDisconnected) {
			t.Fatalf("call %d: err = %v, want permanent ErrDisconnected", i, err)
		}
	}
}

// Closing the client disables redialing even when one is configured.
func TestClosedClientDoesNotRedial(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Shutdown()

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected after Close", err)
	}
}

// The shared fault layer composes over the network client exactly as it
// does over a local DirFS — the cross-package reuse the faultfs package
// exists for.
func TestFaultLayerOverNetworkClient(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Shutdown()

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ffs := faultfs.New(c)
	ffs.FailNext(faultfs.OpAppend, 1)
	if err := ffs.Append("g", []byte("x")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	// Fault consumed: the append flows through to the real server.
	if err := ffs.Append("g", []byte("x")); err != nil {
		t.Fatal(err)
	}
	size, _, err := ffs.Stat("g")
	if err != nil || size != 1 {
		t.Fatalf("Stat = (%d, %v), want 1 byte on the server", size, err)
	}
	var _ smartfam.FS = ffs // faultfs wraps any FS, including the nfs client
}
