package nfs

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mcsd/internal/smartfam"
)

// startPoolServer returns a server address and export root.
func startPoolServer(t *testing.T) (string, string) {
	t.Helper()
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() {
		ln.Close()
		srv.Shutdown()
	})
	return ln.Addr().String(), root
}

func TestPoolBasicOps(t *testing.T) {
	addr, _ := startPoolServer(t)
	p, err := DialPool(addr, 5*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 3 {
		t.Fatalf("Size = %d, want 3", p.Size())
	}
	if err := p.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFile("f.txt", []byte("pooled")); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadFile("f.txt")
	if err != nil || string(got) != "pooled" {
		t.Fatalf("ReadFile = (%q, %v)", got, err)
	}
	size, _, err := p.Stat("f.txt")
	if err != nil || size != 6 {
		t.Fatalf("Stat = (%d, %v)", size, err)
	}
	names, err := p.List()
	if err != nil || len(names) != 1 {
		t.Fatalf("List = (%v, %v)", names, err)
	}
	if err := p.Remove("f.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestPoolMinimumOneConnection(t *testing.T) {
	addr, _ := startPoolServer(t)
	p, err := DialPool(addr, 5*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 1 {
		t.Fatalf("Size = %d, want 1", p.Size())
	}
}

func TestPoolDialFailureClosesPartial(t *testing.T) {
	// Unroutable address: dial fails; the constructor must not leak.
	if _, err := DialPool("127.0.0.1:1", 200*time.Millisecond, 2); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestPoolParallelReadsBeatSingleConnection(t *testing.T) {
	addr, _ := startPoolServer(t)
	single, err := DialPool(addr, 5*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	pooled, err := DialPool(addr, 5*time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pooled.Close()

	data := bytes.Repeat([]byte("d"), 1<<20)
	for i := 0; i < 4; i++ {
		if err := single.WriteFile(fileN(i), data); err != nil {
			t.Fatal(err)
		}
	}
	readAll := func(p *Pool) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < 6; j++ {
					if _, err := p.ReadFile(fileN(i)); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		return time.Since(start)
	}
	// Warm both paths, then compare. On a loopback this mostly measures
	// serialization on the single connection's mutex; the pool should not
	// be slower. (Tolerate noise: require pool <= 1.5x single.)
	readAll(single)
	readAll(pooled)
	ts := readAll(single)
	tp := readAll(pooled)
	if tp > ts*3/2 {
		t.Fatalf("pooled reads slower than single connection: %v vs %v", tp, ts)
	}
}

func TestPoolServesSmartFAM(t *testing.T) {
	addr, root := startPoolServer(t)
	p, err := DialPool(addr, 5*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	sdFS := smartfam.DirFS(root)
	reg := smartfam.NewRegistry(sdFS)
	if err := reg.Register(smartfam.ModuleFunc{
		ModuleName: "echo",
		Fn:         func(_ context.Context, b []byte) ([]byte, error) { return b, nil },
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := smartfam.NewDaemon(sdFS, reg, smartfam.WithPollInterval(time.Millisecond))
	go d.Run(ctx) //nolint:errcheck

	// Host side uses the pool as its FS.
	host := smartfam.NewClient(p, time.Millisecond)
	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer icancel()
	got, err := host.Invoke(ictx, "echo", []byte("via pool"))
	if err != nil || string(got) != "via pool" {
		t.Fatalf("Invoke over pool = (%q, %v)", got, err)
	}
}

func fileN(i int) string { return fmt.Sprintf("data-%d.bin", i) }
