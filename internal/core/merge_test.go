package core

import (
	"testing"
)

func TestMergeStringMatchOutputsExact(t *testing.T) {
	shards := []StringMatchOutput{
		{HitsPerKey: map[string]int{"A": 2, "B": 1}, TotalHits: 3, Fragments: 2,
			Sample: []string{"l1", "l2"}},
		{HitsPerKey: map[string]int{"B": 4, "C": 1}, TotalHits: 5, Fragments: 3,
			Sample: []string{"l3"}},
	}
	got := MergeStringMatchOutputs(shards, 2)
	if got.TotalHits != 8 || got.Fragments != 5 {
		t.Fatalf("totals wrong: %+v", got)
	}
	if got.HitsPerKey["A"] != 2 || got.HitsPerKey["B"] != 5 || got.HitsPerKey["C"] != 1 {
		t.Fatalf("per-key merge wrong: %v", got.HitsPerKey)
	}
	if len(got.Sample) != 2 {
		t.Fatalf("sample cap not honoured: %v", got.Sample)
	}
	// sampleMax 0 keeps everything.
	if all := MergeStringMatchOutputs(shards, 0); len(all.Sample) != 3 {
		t.Fatalf("sampleMax=0 kept %d lines, want 3", len(all.Sample))
	}
}

func TestMergeDBSelectOutputsExact(t *testing.T) {
	shards := []DBSelectOutput{
		{Revenue: map[string]float64{"north": 10.5, "south": 2}, Fragments: 1},
		{Revenue: map[string]float64{"north": 4.5, "east": 1}, Fragments: 2},
	}
	got := MergeDBSelectOutputs(shards)
	if got.Revenue["north"] != 15 || got.Revenue["south"] != 2 || got.Revenue["east"] != 1 {
		t.Fatalf("revenue merge wrong: %v", got.Revenue)
	}
	if got.Groups != 3 || got.Fragments != 3 {
		t.Fatalf("metadata wrong: %+v", got)
	}
}

func TestMergeWordCountOutputs(t *testing.T) {
	shards := []WordCountOutput{
		{TotalWords: 100, Fragments: 2, Top: []WordFreq{{"the", 30}, {"fox", 10}}},
		{TotalWords: 50, Fragments: 1, Top: []WordFreq{{"the", 20}, {"dog", 15}}},
	}
	got := MergeWordCountOutputs(shards, 2)
	if got.TotalWords != 150 || got.Fragments != 3 {
		t.Fatalf("totals wrong: %+v", got)
	}
	if len(got.Top) != 2 || got.Top[0].Word != "the" || got.Top[0].Count != 50 {
		t.Fatalf("top merge wrong: %v", got.Top)
	}
	if got.UniqueWords != 3 {
		t.Fatalf("UniqueWords = %d, want 3 distinct observed", got.UniqueWords)
	}
}

func TestMergeEmptyShards(t *testing.T) {
	if got := MergeStringMatchOutputs(nil, 5); got.TotalHits != 0 || len(got.HitsPerKey) != 0 {
		t.Fatal("empty SM merge not zero")
	}
	if got := MergeDBSelectOutputs(nil); got.Groups != 0 {
		t.Fatal("empty DB merge not zero")
	}
	if got := MergeWordCountOutputs(nil, 5); got.TotalWords != 0 {
		t.Fatal("empty WC merge not zero")
	}
}
