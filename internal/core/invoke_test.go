package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"mcsd/internal/workloads"
)

// startStandardSD boots a daemon serving the standard modules over a data
// dir and returns a runtime attached to it plus the data dir.
func startStandardSD(t *testing.T) (*Runtime, string) {
	t.Helper()
	dir := t.TempDir()
	share := fakeSD(t, StandardModules(ModuleConfig{Store: DirStore(dir), Workers: 2})...)
	rt := New(WithPollInterval(time.Millisecond))
	rt.AttachSD("sd0", share)
	return rt, dir
}

func TestTypedWordCount(t *testing.T) {
	rt, dir := startStandardSD(t)
	text := workloads.GenerateTextBytes(20_000, 41)
	writeFile(t, dir, "c.txt", text)
	out, res, err := rt.WordCount(testCtx(t), WordCountParams{DataFile: "c.txt", TopN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !res.Offloaded {
		t.Fatal("result metadata missing")
	}
	want := workloads.WordCountSeq(text)
	if out.UniqueWords != len(want) {
		t.Fatalf("UniqueWords = %d, want %d", out.UniqueWords, len(want))
	}
	if len(out.Top) != 2 {
		t.Fatalf("TopN not honoured: %d", len(out.Top))
	}
}

func TestTypedStringMatchAndDBSelect(t *testing.T) {
	rt, dir := startStandardSD(t)
	keys := workloads.GenerateKeys(4, 42)
	enc := workloads.GenerateEncryptBytes(15_000, 43, keys, 0.2)
	writeFile(t, dir, "enc.txt", enc)
	writeFile(t, dir, "keys.txt", []byte(strings.Join(keys, "\n")))
	sm, _, err := rt.StringMatch(testCtx(t), StringMatchParams{
		DataFile: "enc.txt", KeysFile: "keys.txt",
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(workloads.StringMatchSeq(enc, keys))); sm.TotalHits != want {
		t.Fatalf("TotalHits = %d, want %d", sm.TotalHits, want)
	}

	sales := workloads.GenerateSalesBytes(10_000, 44)
	writeFile(t, dir, "sales.csv", sales)
	db, _, err := rt.DBSelect(testCtx(t), DBSelectParams{DataFile: "sales.csv", GroupBy: "region"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := workloads.DBSelectSeq(sales, workloads.DBQuery{GroupBy: "region"})
	if err != nil {
		t.Fatal(err)
	}
	if db.Groups != len(want) {
		t.Fatalf("Groups = %d, want %d", db.Groups, len(want))
	}
}

func TestTypedMatMul(t *testing.T) {
	rt, _ := startStandardSD(t)
	mm, _, err := rt.MatMul(testCtx(t), MatMulParams{N: 24, SeedA: 5, SeedB: 6})
	if err != nil {
		t.Fatal(err)
	}
	if mm.N != 24 || mm.FrobSq <= 0 {
		t.Fatalf("matmul output suspicious: %+v", mm)
	}
}

func TestTypedKMeans(t *testing.T) {
	rt, dir := startStandardSD(t)
	pts, truth := workloads.GeneratePoints(1200, 2, 3, 77)
	enc, dim, err := workloads.EncodePoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, dir, "points.bin", enc)
	out, res, err := rt.KMeans(testCtx(t), KMeansParams{
		DataFile: "points.bin", Dim: dim, K: 3, MaxRounds: 60, PartitionBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offloaded {
		t.Fatal("kmeans not offloaded")
	}
	if !out.Converged || len(out.Centroids) != 3 {
		t.Fatalf("kmeans output suspicious: %+v", out)
	}
	// Recovered centroids must sit near the true blob centres.
	for _, tc := range truth {
		best := 1e18
		for _, c := range out.Centroids {
			var dist float64
			for d := range tc {
				diff := tc[d] - c[d]
				dist += diff * diff
			}
			if dist < best {
				best = dist
			}
		}
		if best > 9 { // 3 units
			t.Fatalf("true centre %v not recovered", tc)
		}
	}
}

func TestKMeansModuleValidation(t *testing.T) {
	store, _ := dataDir(t)
	mod := KMeansModule(ModuleConfig{Store: store})
	if _, err := mod.Run(context.Background(), mustEncode(t, KMeansParams{Dim: 2, K: 3})); err == nil {
		t.Fatal("missing data_file accepted")
	}
	if _, err := mod.Run(context.Background(), mustEncode(t, KMeansParams{DataFile: "x", K: 3})); err == nil {
		t.Fatal("dim=0 accepted")
	}
}

func TestTypedWrapperPropagatesErrors(t *testing.T) {
	rt, _ := startStandardSD(t)
	if _, _, err := rt.WordCount(testCtx(t), WordCountParams{DataFile: "ghost.txt"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
