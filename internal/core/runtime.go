package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/sched"
	"mcsd/internal/smartfam"
	"mcsd/internal/trace"
)

// Runtime is the host-side McSD runtime: it tracks attached smart-storage
// nodes, offloads data-intensive module invocations to them over smartFAM,
// balances load across nodes, overlaps the host's computation-intensive
// work, and fails over when a node dies (§IV plus the parallelism and
// fault-tolerance extensions of §VI).
type Runtime struct {
	pollInterval   time.Duration
	attemptTimeout time.Duration
	hbStaleness    time.Duration
	metrics        *metrics.Registry
	tracer         *trace.Tracer
	sched          *sched.Scheduler

	invokeBatch bool
	batchBytes  int
	batchDelay  time.Duration

	mu    sync.Mutex
	sds   []*sdHandle
	local map[string]smartfam.Module
}

type sdHandle struct {
	name     string
	share    smartfam.FS
	client   *smartfam.Client
	inflight atomic.Int64
	healthy  atomic.Bool
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithPollInterval sets how often the runtime polls the share for module
// responses.
func WithPollInterval(d time.Duration) Option {
	return func(r *Runtime) {
		if d > 0 {
			r.pollInterval = d
		}
	}
}

// WithAttemptTimeout bounds each offload attempt; on expiry the runtime
// fails over to the next node. Zero disables per-attempt timeouts.
func WithAttemptTimeout(d time.Duration) Option {
	return func(r *Runtime) { r.attemptTimeout = d }
}

// WithMetrics attaches a metrics registry.
func WithMetrics(m *metrics.Registry) Option {
	return func(r *Runtime) { r.metrics = m }
}

// WithTracer records a span tree per job (offload leg, host-side leg,
// per-node attempts), renderable with trace.Render — it makes the
// framework's host/SD overlap visible.
func WithTracer(tr *trace.Tracer) Option {
	return func(r *Runtime) { r.tracer = tr }
}

// WithScheduler routes offloaded jobs through a job scheduler: submission
// order, tenant fairness, priorities, memory-aware admission, and queue
// backpressure all apply before any node is dialled. The caller drives
// the scheduler's Run loop. A full queue surfaces as sched.ErrQueueFull
// from Run/Invoke.
func WithScheduler(s *sched.Scheduler) Option {
	return func(r *Runtime) { r.sched = s }
}

// WithInvokeBatching enables host-side group commit (fam v2) on every
// node attached afterwards: concurrent invocations of one module coalesce
// their request records into a single share append per batch window.
// Bounds <= 0 select smartfam's defaults. Exactly-once semantics are
// unchanged — batching only alters how records reach the share.
func WithInvokeBatching(maxBytes int, maxDelay time.Duration) Option {
	return func(r *Runtime) {
		r.invokeBatch = true
		r.batchBytes, r.batchDelay = maxBytes, maxDelay
	}
}

// WithHeartbeatStaleness sets how old a node's liveness stamp may be
// before the runtime stops dispatching to it (nodes without a heartbeat
// file are never skipped — they fall back to timeout detection). Zero
// disables heartbeat checks.
func WithHeartbeatStaleness(d time.Duration) Option {
	return func(r *Runtime) { r.hbStaleness = d }
}

// New returns an empty runtime; attach SD nodes with AttachSD.
func New(opts ...Option) *Runtime {
	r := &Runtime{
		pollInterval: smartfam.DefaultPollInterval,
		hbStaleness:  8 * smartfam.DefaultHeartbeatInterval,
		metrics:      metrics.NewRegistry(),
		local:        make(map[string]smartfam.Module),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Metrics returns the runtime's metrics registry.
func (r *Runtime) Metrics() *metrics.Registry { return r.metrics }

// AttachSD registers a smart-storage node by the share through which it is
// reached (an nfs.Client for a remote node, a smartfam DirFS for a
// co-located one).
func (r *Runtime) AttachSD(name string, share smartfam.FS) {
	h := &sdHandle{name: name, share: share, client: smartfam.NewClient(share, r.pollInterval)}
	h.client.SetMetrics(r.metrics)
	if r.invokeBatch {
		h.client.SetBatching(r.batchBytes, r.batchDelay)
	}
	h.healthy.Store(true)
	r.mu.Lock()
	r.sds = append(r.sds, h)
	r.mu.Unlock()
}

// RegisterLocalFallback registers a module the host itself can execute
// when no SD node can — the host-only degraded mode. The module should
// read data through an NFSStore so the fallback pays the data-movement
// cost it actually incurs.
func (r *Runtime) RegisterLocalFallback(m smartfam.Module) {
	r.mu.Lock()
	r.local[m.Name()] = m
	r.mu.Unlock()
}

// SDNames lists attached nodes in attachment order.
func (r *Runtime) SDNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.sds))
	for i, h := range r.sds {
		names[i] = h.name
	}
	return names
}

// Job is one McSD computation: a data-intensive module invocation that the
// runtime offloads, plus an optional host-side computation-intensive
// function that runs concurrently (the framework's load balancing between
// computing and storage nodes).
type Job struct {
	// Module is the data-intensive module to invoke.
	Module string
	// Params is JSON-encoded and passed through the module's log file.
	Params any
	// Local optionally runs on the host, overlapping the offload.
	Local func(ctx context.Context) error

	// The remaining fields only matter when the runtime has a scheduler
	// attached (WithScheduler); without one they are ignored.

	// Tenant groups jobs for the scheduler's fair ordering.
	Tenant string
	// Priority overrides fair ordering (higher dispatches first).
	Priority int
	// InputBytes and FootprintFactor size the job for memory-aware
	// admission (see sched.Job).
	InputBytes      int64
	FootprintFactor float64
}

// Result reports one completed job.
type Result struct {
	// Payload is the module's result payload (Decode into the module's
	// output type).
	Payload []byte
	// SD names the node that served the invocation; empty for a local
	// fallback run.
	SD string
	// Offloaded reports whether a smart-storage node served the job.
	Offloaded bool
	// Attempts counts offload attempts, including the successful one.
	Attempts int
	// Elapsed is end-to-end job time (max of offload and Local).
	Elapsed time.Duration
}

// Errors returned by Run/Invoke.
var (
	ErrNoExecutor = errors.New("core: no SD node or local fallback can run module")
)

// Run executes a job: the module invocation is dispatched to the
// least-loaded healthy SD node (failing over on node errors, falling back
// to a registered local module when every node is out), while Job.Local
// runs concurrently on the host. Run returns when both halves finish.
func (r *Runtime) Run(ctx context.Context, job Job) (*Result, error) {
	params, err := encode(job.Params)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	jobSpan := r.tracer.Start(trace.SpanJobPrefix + job.Module)
	defer jobSpan.Finish()

	var localErr error
	localDone := make(chan struct{})
	if job.Local != nil {
		localSpan := jobSpan.Child(trace.SpanHostLocal)
		go func() {
			defer close(localDone)
			defer localSpan.Finish()
			localErr = job.Local(ctx)
		}()
	} else {
		close(localDone)
	}

	offSpan := jobSpan.Child(trace.SpanOffload)
	res, offErr := r.dispatch(ctx, job, params, offSpan)
	offSpan.Finish()
	<-localDone
	if offErr != nil {
		return nil, offErr
	}
	if localErr != nil {
		return nil, fmt.Errorf("core: host-side function: %w", localErr)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Invoke runs a module with no host-side part.
func (r *Runtime) Invoke(ctx context.Context, module string, params any) (*Result, error) {
	return r.Run(ctx, Job{Module: module, Params: params})
}

// dispatch routes the offload leg directly to invoke, or through the
// attached scheduler — the job waits in the queue (spans record the
// delay) until admission control clears it, then the scheduler's worker
// executes the node-selection/failover path as usual.
func (r *Runtime) dispatch(ctx context.Context, job Job, params []byte, span *trace.Span) (*Result, error) {
	// One correlation ID per job, shared by every attempt — failovers,
	// scheduler retries, reconnected transports. The ID is smartFAM's
	// idempotency key: a daemon that already completed the work replays
	// its journaled response instead of executing the module again.
	reqID := smartfam.NewID()
	if r.sched == nil {
		return r.invoke(ctx, job.Module, reqID, params, span)
	}
	var res *Result
	h, err := r.sched.Submit(ctx, &sched.Job{
		Tenant:          job.Tenant,
		Module:          job.Module,
		Priority:        job.Priority,
		InputBytes:      job.InputBytes,
		FootprintFactor: job.FootprintFactor,
		Exec: func(execCtx context.Context, _ *sched.Job) ([]byte, error) {
			rr, err := r.invoke(execCtx, job.Module, reqID, params, span)
			if err != nil {
				return nil, err
			}
			res = rr
			return rr.Payload, nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("core: offload of %q rejected: %w", job.Module, err)
	}
	if _, err := h.Wait(ctx); err != nil {
		return nil, err
	}
	return res, nil
}

// invoke picks nodes and handles failover. Every attempt reuses reqID so
// retries are idempotent at the daemon.
func (r *Runtime) invoke(ctx context.Context, module, reqID string, params []byte, span *trace.Span) (*Result, error) {
	res := &Result{}
	tried := make(map[*sdHandle]bool)
	var lastErr error
	for {
		h := r.pick(tried)
		if h == nil {
			break
		}
		tried[h] = true
		res.Attempts++
		attemptSpan := span.Child(trace.SpanAttemptPrefix + h.name)
		payload, err := r.attempt(ctx, h, module, reqID, params)
		attemptSpan.Finish()
		if err == nil {
			res.Payload = payload
			res.SD = h.name
			res.Offloaded = true
			r.metrics.Counter(metrics.CoreOffloads).Inc()
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var merr *smartfam.ModuleError
		if errors.As(err, &merr) {
			if sched.IsQueueFullMessage(merr.Msg) {
				// The node's scheduler shed the request. Re-type the wire
				// message so callers (mcsdctl, retry loops) can match
				// sched.ErrQueueFull; like other application-level
				// results it does not fail the node over.
				r.metrics.Counter(metrics.CoreQueueFullRejects).Inc()
				return nil, fmt.Errorf("core: node %s: %w", h.name, sched.ErrQueueFull)
			}
			// Application-level failure: deterministic, do not fail over.
			return nil, err
		}
		if errors.Is(err, smartfam.ErrUnknownModule) {
			// This node does not host the module; try the next.
			lastErr = err
			continue
		}
		// Transport failure or timeout: mark unhealthy, fail over (§VI:
		// "a mechanism in McSD to support fault tolerance").
		h.healthy.Store(false)
		r.metrics.Counter(metrics.CoreFailovers).Inc()
		lastErr = err
	}

	// Local fallback.
	r.mu.Lock()
	m, ok := r.local[module]
	r.mu.Unlock()
	if ok {
		res.Attempts++
		fbSpan := span.Child(trace.SpanLocalFallback)
		payload, err := m.Run(ctx, params)
		fbSpan.Finish()
		if err != nil {
			return nil, fmt.Errorf("core: local fallback for %q: %w", module, err)
		}
		res.Payload = payload
		r.metrics.Counter(metrics.CoreLocalFallbacks).Inc()
		return res, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w: %q: last error: %v", ErrNoExecutor, module, lastErr)
	}
	return nil, fmt.Errorf("%w: %q", ErrNoExecutor, module)
}

// attempt performs one invocation against one node, with the per-attempt
// timeout.
func (r *Runtime) attempt(ctx context.Context, h *sdHandle, module, reqID string, params []byte) ([]byte, error) {
	if r.attemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.attemptTimeout)
		defer cancel()
	}
	h.inflight.Add(1)
	defer h.inflight.Add(-1)
	timer := r.metrics.Timer(metrics.CoreInvokePrefix + module)
	start := time.Now()
	payload, err := h.client.InvokeID(ctx, module, reqID, params)
	timer.Observe(time.Since(start))
	return payload, err
}

// pick returns the least-loaded healthy untried node, or nil. A node whose
// heartbeat stamp has gone stale is passed over (and counted) without
// burning an invocation timeout on it; nodes that never stamped one are
// given the benefit of the doubt.
func (r *Runtime) pick(tried map[*sdHandle]bool) *sdHandle {
	r.mu.Lock()
	candidates := make([]*sdHandle, len(r.sds))
	copy(candidates, r.sds)
	staleness := r.hbStaleness
	r.mu.Unlock()

	var best *sdHandle
	for _, h := range candidates {
		if tried[h] || !h.healthy.Load() {
			continue
		}
		if staleness > 0 {
			if ts, ok := smartfam.ReadHeartbeat(h.share); ok && time.Since(ts) > staleness {
				r.metrics.Counter(metrics.CoreHeartbeatSkips).Inc()
				continue
			}
		}
		if best == nil || h.inflight.Load() < best.inflight.Load() {
			best = h
		}
	}
	return best
}

// ShardedResult is the outcome of one shard of RunSharded.
type ShardedResult struct {
	Index   int
	Result  *Result
	Err     error
	Payload []byte
}

// RunSharded dispatches one invocation per params entry concurrently
// across the attached SD nodes — the multi-SD parallelism of §VI. Results
// arrive in input order; individual shard failures do not cancel others.
func (r *Runtime) RunSharded(ctx context.Context, module string, paramsList []any) []ShardedResult {
	out := make([]ShardedResult, len(paramsList))
	var wg sync.WaitGroup
	for i, p := range paramsList {
		wg.Add(1)
		go func(i int, p any) {
			defer wg.Done()
			res, err := r.Invoke(ctx, module, p)
			out[i] = ShardedResult{Index: i, Result: res, Err: err}
			if res != nil {
				out[i].Payload = res.Payload
			}
		}(i, p)
	}
	wg.Wait()
	return out
}

// MarkHealthy restores a node after operator intervention.
func (r *Runtime) MarkHealthy(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.sds {
		if h.name == name {
			h.healthy.Store(true)
			return true
		}
	}
	return false
}
