package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcsd/internal/sched"
	"mcsd/internal/smartfam"
)

// startSched runs a scheduler loop for the duration of the test.
func startSched(t *testing.T, cfg sched.Config) *sched.Scheduler {
	t.Helper()
	s := sched.New(cfg, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return s
}

func TestRunThroughScheduler(t *testing.T) {
	s := startSched(t, sched.Config{Workers: 1})
	rt := New(WithPollInterval(time.Millisecond), WithScheduler(s))
	rt.AttachSD("sd1", fakeSD(t, echoMod("echo")))

	res, err := rt.Run(testCtx(t), Job{Module: "echo", Params: "hi", Tenant: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offloaded || res.SD != "sd1" || string(res.Payload) != `ok:"hi"` {
		t.Fatalf("result = %+v payload %q, want offload through scheduler", res, res.Payload)
	}
	st := s.Status()
	if st.Completed != 1 {
		t.Fatalf("scheduler completed = %d, want the offload routed through it", st.Completed)
	}
}

func TestRunSchedulerQueueFullSurfaces(t *testing.T) {
	// Depth 1, single worker held by a blocking job: the queue fills and
	// further Runs fail fast with the typed backpressure error.
	release := make(chan struct{})
	defer close(release)
	s := startSched(t, sched.Config{Workers: 1, MaxQueueDepth: 1})
	rt := New(WithPollInterval(time.Millisecond), WithScheduler(s))
	blocker := smartfam.ModuleFunc{
		ModuleName: "echo",
		Fn: func(ctx context.Context, p []byte) ([]byte, error) {
			select {
			case <-release:
				return p, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	rt.AttachSD("sd1", fakeSD(t, blocker))

	ctx := testCtx(t)
	running := make(chan error, 2)
	invoke := func() {
		_, err := rt.Invoke(ctx, "echo", "held")
		running <- err
	}
	wait := func(cond func(sched.Status) bool) {
		t.Helper()
		for !cond(s.Status()) {
			select {
			case <-ctx.Done():
				t.Fatal("scheduler never reached the expected state")
			case <-time.After(time.Millisecond):
			}
		}
	}
	// First invoke occupies the worker, then the second fills the
	// depth-1 queue — sequenced so they never race for the queue slot.
	go invoke()
	wait(func(st sched.Status) bool { return st.Running == 1 })
	go invoke()
	wait(func(st sched.Status) bool { return st.Queued == 1 })

	_, err := rt.Invoke(ctx, "echo", "rejected")
	if !errors.Is(err, sched.ErrQueueFull) {
		t.Fatalf("err = %v, want sched.ErrQueueFull", err)
	}
}

func TestInvokeMapsWireQueueFull(t *testing.T) {
	// A remote node's scheduler rejection arrives as a module error record
	// whose message carries the queue-full text; invoke must re-type it so
	// errors.Is works at the caller, and must not fail over.
	shedding := smartfam.ModuleFunc{
		ModuleName: "busy",
		Fn: func(context.Context, []byte) ([]byte, error) {
			return nil, sched.ErrQueueFull
		},
	}
	rt := New(WithPollInterval(time.Millisecond))
	rt.AttachSD("sd1", fakeSD(t, shedding))
	rt.AttachSD("sd2", fakeSD(t, shedding))

	_, err := rt.Invoke(testCtx(t), "busy", nil)
	if !errors.Is(err, sched.ErrQueueFull) {
		t.Fatalf("err = %v, want sched.ErrQueueFull across the wire", err)
	}
	if rt.Metrics().Counter("core.failovers").Value() != 0 {
		t.Fatal("queue-full must not burn a failover")
	}
	if rt.Metrics().Counter("core.queue_full_rejects").Value() == 0 {
		t.Fatal("queue-full rejection not counted")
	}
}

func TestRunSchedulerCancelledSubmit(t *testing.T) {
	s := startSched(t, sched.Config{Workers: 1})
	rt := New(WithPollInterval(time.Millisecond), WithScheduler(s))
	rt.AttachSD("sd1", fakeSD(t, echoMod("echo")))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rt.Invoke(ctx, "echo", nil); err == nil {
		t.Fatal("cancelled submit succeeded")
	}
}
