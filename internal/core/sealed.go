package core

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"mcsd/internal/smartfam"
)

// FSStore adapts a smartFAM share FS into a DataStore, so a module can
// read data objects that live on the share itself — the replicated
// fragment objects the fleet tier writes next to the log files — and so
// tests can route module data reads through a faultfs-wrapped share.
func FSStore(fsys smartfam.FS) DataStore { return &fsStore{fs: fsys} }

type fsStore struct {
	fs smartfam.FS
}

func (s *fsStore) Open(name string) (io.ReadCloser, error) {
	return s.OpenAt(name, 0)
}

func (s *fsStore) OpenAt(name string, off int64) (io.ReadCloser, error) {
	return &fsReader{fs: s.fs, name: name, off: off}, nil
}

func (s *fsStore) Size(name string) (int64, error) {
	size, _, err := s.fs.Stat(name)
	return size, err
}

// fsReader streams a share file through FS.ReadAt.
type fsReader struct {
	fs   smartfam.FS
	name string
	off  int64
	eof  bool
}

func (r *fsReader) Read(p []byte) (int, error) {
	if r.eof {
		return 0, io.EOF
	}
	n, err := r.fs.ReadAt(r.name, p, r.off)
	r.off += int64(n)
	if errors.Is(err, io.EOF) {
		r.eof = true
		if n > 0 {
			return n, nil
		}
		return 0, io.EOF
	}
	return n, err
}

func (r *fsReader) Close() error { return nil }

// SealedStore wraps a DataStore whose files are sealed blobs
// (smartfam.SealBlob: payload + fixed-width CRC32 trailer) and verifies
// every read: Open parses the trailer first (one small tail read), then
// streams exactly the payload, folding the bytes through CRC32 and
// failing with smartfam.ErrCorruptBlob — before EOF is ever reported — if
// the checksum or length disagrees. Size reports the payload size. A
// module reading a replicated fragment object through a SealedStore can
// therefore never silently consume a bit-flipped or truncated replica.
func SealedStore(inner DataStore) DataStore { return &sealedStore{inner: inner} }

type sealedStore struct {
	inner DataStore
}

func (s *sealedStore) Size(name string) (int64, error) {
	size, err := s.inner.Size(name)
	if err != nil {
		return 0, err
	}
	if size < int64(smartfam.BlobTrailerLen) {
		return 0, fmt.Errorf("core: %s: %w: %d bytes is shorter than the trailer", name, smartfam.ErrCorruptBlob, size)
	}
	return size - int64(smartfam.BlobTrailerLen), nil
}

func (s *sealedStore) Open(name string) (io.ReadCloser, error) {
	size, err := s.inner.Size(name)
	if err != nil {
		return nil, err
	}
	if size < int64(smartfam.BlobTrailerLen) {
		return nil, fmt.Errorf("core: %s: %w: %d bytes is shorter than the trailer", name, smartfam.ErrCorruptBlob, size)
	}
	tr, err := OpenAt(s.inner, name, size-int64(smartfam.BlobTrailerLen))
	if err != nil {
		return nil, err
	}
	trailer := make([]byte, smartfam.BlobTrailerLen)
	_, rerr := io.ReadFull(tr, trailer)
	tr.Close()
	if rerr != nil {
		return nil, fmt.Errorf("core: %s: reading blob trailer: %w", name, rerr)
	}
	payloadLen, crc, err := smartfam.ParseBlobTrailer(trailer)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	if payloadLen != size-int64(smartfam.BlobTrailerLen) {
		return nil, fmt.Errorf("core: %s: %w: trailer pins %d payload bytes, file holds %d",
			name, smartfam.ErrCorruptBlob, payloadLen, size-int64(smartfam.BlobTrailerLen))
	}
	f, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &verifyReader{name: name, r: f, remaining: payloadLen, want: crc}, nil
}

// verifyReader serves exactly the payload bytes, checking the CRC before
// the final EOF so a consumer can never finish on corrupt data.
type verifyReader struct {
	name      string
	r         io.ReadCloser
	remaining int64
	want      uint32
	crc       uint32
	checked   bool
}

func (v *verifyReader) Read(p []byte) (int, error) {
	if v.remaining <= 0 {
		if err := v.check(); err != nil {
			return 0, err
		}
		return 0, io.EOF
	}
	if int64(len(p)) > v.remaining {
		p = p[:v.remaining]
	}
	n, err := v.r.Read(p)
	if n > 0 {
		v.crc = crc32.Update(v.crc, crc32.IEEETable, p[:n])
		v.remaining -= int64(n)
	}
	if err != nil {
		if errors.Is(err, io.EOF) {
			if v.remaining > 0 {
				return n, fmt.Errorf("core: %s: %w: payload truncated %d bytes early",
					v.name, smartfam.ErrCorruptBlob, v.remaining)
			}
			if cerr := v.check(); cerr != nil {
				return n, cerr
			}
			if n > 0 {
				return n, nil
			}
			return 0, io.EOF
		}
		return n, err
	}
	if v.remaining == 0 {
		if cerr := v.check(); cerr != nil {
			return n, cerr
		}
	}
	return n, nil
}

func (v *verifyReader) check() error {
	if v.checked {
		return nil
	}
	v.checked = true
	if v.crc != v.want {
		return fmt.Errorf("core: %s: %w: payload crc %08x, trailer pins %08x",
			v.name, smartfam.ErrCorruptBlob, v.crc, v.want)
	}
	return nil
}

func (v *verifyReader) Close() error { return v.r.Close() }
