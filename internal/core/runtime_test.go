package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcsd/internal/smartfam"
	"mcsd/internal/trace"
)

// fakeSD spins up a registry+daemon over a DirFS share with the given
// modules and returns the share.
func fakeSD(t *testing.T, mods ...smartfam.Module) smartfam.FS {
	t.Helper()
	share := smartfam.DirFS(t.TempDir())
	reg := smartfam.NewRegistry(share)
	for _, m := range mods {
		if err := reg.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	d := smartfam.NewDaemon(share, reg, smartfam.WithPollInterval(time.Millisecond), smartfam.WithWorkers(4))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return share
}

func echoMod(name string) smartfam.Module {
	return smartfam.ModuleFunc{
		ModuleName: name,
		Fn: func(_ context.Context, p []byte) ([]byte, error) {
			return append([]byte("ok:"), p...), nil
		},
	}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRunOffloadsToSD(t *testing.T) {
	rt := New(WithPollInterval(time.Millisecond))
	rt.AttachSD("sd1", fakeSD(t, echoMod("echo")))
	res, err := rt.Run(testCtx(t), Job{Module: "echo", Params: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offloaded || res.SD != "sd1" {
		t.Fatalf("result = %+v, want offloaded to sd1", res)
	}
	if string(res.Payload) != `ok:"hi"` {
		t.Fatalf("payload = %q", res.Payload)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", res.Attempts)
	}
	if rt.Metrics().Counter("core.offloads").Value() != 1 {
		t.Fatal("offload not counted")
	}
}

func TestRunOverlapsLocalWork(t *testing.T) {
	rt := New(WithPollInterval(time.Millisecond))
	rt.AttachSD("sd1", fakeSD(t, echoMod("echo")))
	var localRan atomic.Bool
	res, err := rt.Run(testCtx(t), Job{
		Module: "echo",
		Params: 1,
		Local: func(ctx context.Context) error {
			localRan.Store(true)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !localRan.Load() {
		t.Fatal("host-side function did not run")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestRunLocalErrorSurfaces(t *testing.T) {
	rt := New(WithPollInterval(time.Millisecond))
	rt.AttachSD("sd1", fakeSD(t, echoMod("echo")))
	_, err := rt.Run(testCtx(t), Job{
		Module: "echo",
		Local:  func(context.Context) error { return fmt.Errorf("host blew up") },
	})
	if err == nil || !strings.Contains(err.Error(), "host blew up") {
		t.Fatalf("err = %v, want host-side failure surfaced", err)
	}
}

func TestRunNoExecutor(t *testing.T) {
	rt := New(WithPollInterval(time.Millisecond))
	_, err := rt.Invoke(testCtx(t), "ghost", nil)
	if !errors.Is(err, ErrNoExecutor) {
		t.Fatalf("err = %v, want ErrNoExecutor", err)
	}
}

func TestRunSkipsNodeWithoutModule(t *testing.T) {
	rt := New(WithPollInterval(time.Millisecond))
	rt.AttachSD("sd1", fakeSD(t, echoMod("other")))
	rt.AttachSD("sd2", fakeSD(t, echoMod("echo")))
	res, err := rt.Invoke(testCtx(t), "echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SD != "sd2" {
		t.Fatalf("served by %q, want sd2", res.SD)
	}
}

func TestRunFailsOverFromDeadNode(t *testing.T) {
	rt := New(WithPollInterval(time.Millisecond), WithAttemptTimeout(150*time.Millisecond))
	// sd1's share has the module's log file, but no daemon serves it —
	// a dead node. The attempt times out and fails over to sd2.
	deadShare := smartfam.DirFS(t.TempDir())
	deadReg := smartfam.NewRegistry(deadShare)
	if err := deadReg.Register(echoMod("echo")); err != nil {
		t.Fatal(err)
	}
	rt.AttachSD("sd1", deadShare)
	rt.AttachSD("sd2", fakeSD(t, echoMod("echo")))

	res, err := rt.Invoke(testCtx(t), "echo", "x")
	if err != nil {
		t.Fatal(err)
	}
	if res.SD != "sd2" || res.Attempts != 2 {
		t.Fatalf("result = %+v, want failover to sd2 on attempt 2", res)
	}
	if rt.Metrics().Counter("core.failovers").Value() != 1 {
		t.Fatal("failover not counted")
	}
	// sd1 is now unhealthy: the next job goes straight to sd2.
	res, err = rt.Invoke(testCtx(t), "echo", "y")
	if err != nil {
		t.Fatal(err)
	}
	if res.SD != "sd2" || res.Attempts != 1 {
		t.Fatalf("unhealthy node retried: %+v", res)
	}
	// Operator brings it back.
	if !rt.MarkHealthy("sd1") {
		t.Fatal("MarkHealthy failed")
	}
	if rt.MarkHealthy("nope") {
		t.Fatal("MarkHealthy of unknown node succeeded")
	}
}

func TestRunSkipsStaleHeartbeatNode(t *testing.T) {
	// A node whose daemon once ran (stale heartbeat on the share) is
	// skipped immediately — no invocation timeout burned.
	staleShare := smartfam.DirFS(t.TempDir())
	staleReg := smartfam.NewRegistry(staleShare)
	if err := staleReg.Register(echoMod("echo")); err != nil {
		t.Fatal(err)
	}
	if err := smartfam.WriteHeartbeat(staleShare, time.Now().Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}

	rt := New(WithPollInterval(time.Millisecond),
		WithHeartbeatStaleness(100*time.Millisecond),
		WithAttemptTimeout(30*time.Second)) // would be painful if burned
	rt.AttachSD("stale", staleShare)
	rt.AttachSD("live", fakeSD(t, echoMod("echo")))

	start := time.Now()
	res, err := rt.Invoke(testCtx(t), "echo", "x")
	if err != nil {
		t.Fatal(err)
	}
	if res.SD != "live" {
		t.Fatalf("served by %q, want live node", res.SD)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (stale node skipped, not tried)", res.Attempts)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("skip took too long — attempt timeout was burned")
	}
	if rt.Metrics().Counter("core.heartbeat_skips").Value() == 0 {
		t.Fatal("heartbeat skip not counted")
	}
}

func TestRunStaleHeartbeatUnderConcurrentUpdates(t *testing.T) {
	// Node selection reads heartbeats off the share while the daemons
	// rewrite them — the steady state of a real cluster. One node's stamp
	// is frozen in the past, the other's is refreshed concurrently; every
	// pick must land on the live node, with the stamp file being
	// overwritten mid-read. Run under -race this also proves the
	// pick path shares no unsynchronized state with heartbeat writers.
	staleShare := smartfam.DirFS(t.TempDir())
	staleReg := smartfam.NewRegistry(staleShare)
	if err := staleReg.Register(echoMod("echo")); err != nil {
		t.Fatal(err)
	}
	liveShare := fakeSD(t, echoMod("echo"))
	// Seed the stale stamp before any pick: a node with no heartbeat file
	// at all is deliberately still tried (see the next test), which would
	// burn the attempt timeout here.
	if err := smartfam.WriteHeartbeat(staleShare, time.Now().Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for i := 0; i < 2; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
				_ = smartfam.WriteHeartbeat(liveShare, time.Now())
				_ = smartfam.WriteHeartbeat(staleShare, time.Now().Add(-time.Hour))
			}
		}()
	}
	t.Cleanup(func() {
		close(stop)
		writers.Wait()
	})

	// WriteHeartbeat truncates before rewriting, so a pick racing a writer
	// can read a torn (empty) stamp and legitimately try the dead node —
	// keep the attempt timeout short so that degrades to a quick failover
	// rather than a stall. The end state asserted below is unchanged:
	// every job is served by the live node.
	rt := New(WithPollInterval(time.Millisecond),
		WithHeartbeatStaleness(5*time.Second),
		WithAttemptTimeout(200*time.Millisecond))
	rt.AttachSD("stale", staleShare)
	rt.AttachSD("live", liveShare)

	ctx := testCtx(t)
	var invokers sync.WaitGroup
	for g := 0; g < 4; g++ {
		invokers.Add(1)
		go func() {
			defer invokers.Done()
			for i := 0; i < 5; i++ {
				res, err := rt.Invoke(ctx, "echo", i)
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if res.SD != "live" {
					t.Errorf("served by %q, want live (stale heartbeat picked)", res.SD)
					return
				}
			}
		}()
	}
	invokers.Wait()
	if rt.Metrics().Counter("core.heartbeat_skips").Value() == 0 {
		t.Fatal("stale node never skipped by heartbeat")
	}
}

func TestRunNoHeartbeatFileStillTried(t *testing.T) {
	// Shares without a heartbeat (old daemons) must not be skipped.
	rt := New(WithPollInterval(time.Millisecond), WithHeartbeatStaleness(time.Millisecond))
	share := fakeSD(t, echoMod("echo"))
	// fakeSD's daemon stamps heartbeats; remove staleness concerns by
	// attaching a second share that never had one.
	bare := smartfam.DirFS(t.TempDir())
	bareReg := smartfam.NewRegistry(bare)
	if err := bareReg.Register(echoMod("other")); err != nil {
		t.Fatal(err)
	}
	_ = share
	rt.AttachSD("bare", bare)
	// "other" exists only on the bare share; with heartbeat checks on, the
	// bare node must still be tried (and will fail only by timeout, so use
	// a short one).
	rtShort := New(WithPollInterval(time.Millisecond),
		WithHeartbeatStaleness(time.Millisecond), WithAttemptTimeout(50*time.Millisecond))
	rtShort.AttachSD("bare", bare)
	_, err := rtShort.Invoke(testCtx(t), "other", nil)
	if errors.Is(err, ErrNoExecutor) && rtShort.Metrics().Counter("core.heartbeat_skips").Value() > 0 {
		t.Fatal("node without heartbeat file was skipped")
	}
}

func TestRunModuleErrorDoesNotFailOver(t *testing.T) {
	failing := smartfam.ModuleFunc{
		ModuleName: "fail",
		Fn: func(context.Context, []byte) ([]byte, error) {
			return nil, fmt.Errorf("deterministic app error")
		},
	}
	rt := New(WithPollInterval(time.Millisecond))
	rt.AttachSD("sd1", fakeSD(t, failing))
	rt.AttachSD("sd2", fakeSD(t, failing))
	_, err := rt.Invoke(testCtx(t), "fail", nil)
	var merr *smartfam.ModuleError
	if !errors.As(err, &merr) {
		t.Fatalf("err = %v, want ModuleError", err)
	}
	if rt.Metrics().Counter("core.failovers").Value() != 0 {
		t.Fatal("module error must not trigger failover")
	}
}

func TestRunLocalFallback(t *testing.T) {
	rt := New(WithPollInterval(time.Millisecond), WithAttemptTimeout(100*time.Millisecond))
	// One dead node; a local fallback registered.
	deadShare := smartfam.DirFS(t.TempDir())
	deadReg := smartfam.NewRegistry(deadShare)
	if err := deadReg.Register(echoMod("echo")); err != nil {
		t.Fatal(err)
	}
	rt.AttachSD("sd1", deadShare)
	rt.RegisterLocalFallback(smartfam.ModuleFunc{
		ModuleName: "echo",
		Fn: func(_ context.Context, p []byte) ([]byte, error) {
			return []byte("local"), nil
		},
	})
	res, err := rt.Invoke(testCtx(t), "echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offloaded || res.SD != "" {
		t.Fatalf("fallback result marked offloaded: %+v", res)
	}
	if string(res.Payload) != "local" {
		t.Fatalf("payload = %q", res.Payload)
	}
	if rt.Metrics().Counter("core.local_fallbacks").Value() != 1 {
		t.Fatal("fallback not counted")
	}
}

func TestRunShardedSpreadsLoad(t *testing.T) {
	var served1, served2 atomic.Int64
	slow := func(counter *atomic.Int64) smartfam.Module {
		return smartfam.ModuleFunc{
			ModuleName: "work",
			Fn: func(_ context.Context, p []byte) ([]byte, error) {
				counter.Add(1)
				time.Sleep(30 * time.Millisecond)
				return p, nil
			},
		}
	}
	rt := New(WithPollInterval(time.Millisecond))
	rt.AttachSD("sd1", fakeSD(t, slow(&served1)))
	rt.AttachSD("sd2", fakeSD(t, slow(&served2)))

	params := make([]any, 6)
	for i := range params {
		params[i] = i
	}
	results := rt.RunSharded(testCtx(t), "work", params)
	for i, sr := range results {
		if sr.Err != nil {
			t.Fatalf("shard %d: %v", i, sr.Err)
		}
		if string(sr.Payload) != fmt.Sprint(i) {
			t.Fatalf("shard %d payload = %q", i, sr.Payload)
		}
	}
	if served1.Load() == 0 || served2.Load() == 0 {
		t.Fatalf("load not balanced: sd1=%d sd2=%d", served1.Load(), served2.Load())
	}
}

func TestRunRecordsTrace(t *testing.T) {
	tr := trace.New()
	rt := New(WithPollInterval(time.Millisecond), WithTracer(tr))
	rt.AttachSD("sd1", fakeSD(t, echoMod("echo")))
	if _, err := rt.Run(testCtx(t), Job{
		Module: "echo",
		Params: 1,
		Local:  func(context.Context) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != "job echo" {
		t.Fatalf("roots = %v", roots)
	}
	names := map[string]bool{}
	for _, c := range roots[0].Children() {
		names[c.Name] = true
		if c.Duration() <= 0 {
			t.Fatalf("span %q not finished", c.Name)
		}
	}
	if !names["offload"] || !names["host-local"] {
		t.Fatalf("missing spans: %v", names)
	}
	var b strings.Builder
	if err := trace.Render(&b, roots, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "attempt sd1") {
		t.Fatalf("render missing attempt span:\n%s", b.String())
	}
}

func TestRunShardedPartialFailure(t *testing.T) {
	// One shard fails (module error); the rest must complete untouched.
	picky := smartfam.ModuleFunc{
		ModuleName: "picky",
		Fn: func(_ context.Context, p []byte) ([]byte, error) {
			if strings.Contains(string(p), "2") {
				return nil, fmt.Errorf("refusing shard 2")
			}
			return p, nil
		},
	}
	rt := New(WithPollInterval(time.Millisecond))
	rt.AttachSD("sd1", fakeSD(t, picky))
	params := []any{0, 1, 2, 3}
	results := rt.RunSharded(testCtx(t), "picky", params)
	var failed, succeeded int
	for i, sr := range results {
		if sr.Err != nil {
			failed++
			var merr *smartfam.ModuleError
			if !errors.As(sr.Err, &merr) {
				t.Fatalf("shard %d error type %T", i, sr.Err)
			}
			continue
		}
		succeeded++
		if string(sr.Payload) != fmt.Sprint(i) {
			t.Fatalf("shard %d payload %q", i, sr.Payload)
		}
	}
	if failed != 1 || succeeded != 3 {
		t.Fatalf("failed=%d succeeded=%d, want 1/3", failed, succeeded)
	}
}

func TestSDNames(t *testing.T) {
	rt := New()
	rt.AttachSD("a", smartfam.DirFS(t.TempDir()))
	rt.AttachSD("b", smartfam.DirFS(t.TempDir()))
	names := rt.SDNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("SDNames = %v", names)
	}
}

func TestRunUnencodableParams(t *testing.T) {
	rt := New()
	_, err := rt.Invoke(context.Background(), "m", func() {})
	if err == nil {
		t.Fatal("unencodable params accepted")
	}
}
