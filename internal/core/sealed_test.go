package core

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mcsd/internal/smartfam"
)

func writeSealed(t *testing.T, fsys smartfam.FS, name string, payload []byte) {
	t.Helper()
	if err := fsys.Create(name); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Append(name, smartfam.SealBlob(payload)); err != nil {
		t.Fatal(err)
	}
}

func TestFSStoreReadsShareFiles(t *testing.T) {
	fsys := smartfam.DirFS(t.TempDir())
	payload := bytes.Repeat([]byte("share-backed data store "), 4096)
	if err := fsys.Append("data.bin", payload); err != nil {
		t.Fatal(err)
	}
	store := FSStore(fsys)
	size, err := store.Size("data.bin")
	if err != nil || size != int64(len(payload)) {
		t.Fatalf("Size = %d, %v; want %d", size, err, len(payload))
	}
	f, err := store.Open("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %d bytes, want %d", len(got), len(payload))
	}
	// Range opens position correctly.
	at, err := OpenAt(store, "data.bin", 10)
	if err != nil {
		t.Fatal(err)
	}
	defer at.Close()
	tail, err := io.ReadAll(at)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, payload[10:]) {
		t.Fatal("OpenAt tail mismatch")
	}
}

func TestSealedStoreVerifiesPayload(t *testing.T) {
	fsys := smartfam.DirFS(t.TempDir())
	payload := bytes.Repeat([]byte("forty-two words of wisdom "), 1000)
	writeSealed(t, fsys, "obj.frag", payload)
	store := SealedStore(FSStore(fsys))
	size, err := store.Size("obj.frag")
	if err != nil || size != int64(len(payload)) {
		t.Fatalf("Size = %d, %v; want payload size %d", size, err, len(payload))
	}
	f, err := store.Open("obj.frag")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("verified payload differs from original")
	}
}

func TestSealedStoreRejectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	fsys := smartfam.DirFS(dir)
	payload := bytes.Repeat([]byte("bits rot in the middle of the night "), 1000)
	raw := smartfam.SealBlob(payload)
	raw[len(raw)/3] ^= 0x01
	if err := fsys.Append("obj.frag", raw); err != nil {
		t.Fatal(err)
	}
	store := SealedStore(FSStore(fsys))
	f, err := store.Open("obj.frag")
	if err != nil {
		t.Fatal(err) // trailer itself is intact; the stream must fail
	}
	defer f.Close()
	if _, err := io.ReadAll(f); !errors.Is(err, smartfam.ErrCorruptBlob) {
		t.Fatalf("read of flipped payload: %v, want ErrCorruptBlob", err)
	}
}

func TestSealedStoreRejectsTruncation(t *testing.T) {
	fsys := smartfam.DirFS(t.TempDir())
	payload := []byte("short payload")
	raw := smartfam.SealBlob(payload)
	if err := fsys.Append("trunc.frag", raw[:len(raw)-4]); err != nil {
		t.Fatal(err)
	}
	store := SealedStore(FSStore(fsys))
	if _, err := store.Open("trunc.frag"); !errors.Is(err, smartfam.ErrCorruptBlob) {
		t.Fatalf("open truncated blob: %v, want ErrCorruptBlob", err)
	}
	if err := fsys.Create("tiny.frag"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open("tiny.frag"); !errors.Is(err, smartfam.ErrCorruptBlob) {
		t.Fatalf("open sub-trailer file: %v, want ErrCorruptBlob", err)
	}
}
