package core

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"mcsd/internal/mapreduce"
	"mcsd/internal/memsim"
	"mcsd/internal/partition"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

// ModuleConfig configures the standard data-intensive modules for one
// node.
type ModuleConfig struct {
	// Store is where the node's data files live.
	Store DataStore
	// Workers is the node's core count for MapReduce (0 = GOMAXPROCS).
	Workers int
	// Memory optionally admission-controls runs — native executions of
	// oversized inputs fail exactly like the paper's Phoenix.
	Memory *memsim.Accountant
}

func (c ModuleConfig) workers(override int) int {
	if override > 0 {
		return override
	}
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c ModuleConfig) mrConfig(workers int) mapreduce.Config {
	return mapreduce.Config{Workers: workers, Memory: c.Memory}
}

// AutoPartition is the sentinel for PartitionBytes meaning "let the
// runtime pick" — the automatic path of §IV-C: the fragment size is
// derived from the node's memory configuration and the workload's
// footprint factor so a fragment's whole footprint fits comfortably in
// RAM.
const AutoPartition int64 = -1

// partitionBytes resolves a requested partition size: >0 passes through,
// 0 stays native, AutoPartition asks partition.AutoFragmentSize with the
// node's memory model (or the default Table I node when the module has no
// accountant).
func (c ModuleConfig) partitionBytes(requested int64, footprintFactor float64) int64 {
	if requested >= 0 {
		return requested
	}
	mem := memsim.DefaultConfig()
	if c.Memory != nil {
		mem = c.Memory.Config()
	}
	return partition.AutoFragmentSize(mem, footprintFactor)
}

// StandardModules returns the preloaded modules of a McSD node: the
// paper's three benchmark applications — word count, string match, matrix
// multiplication — plus the §VI extensibility modules: the dbselect
// database operation and iterative out-of-core k-means.
func StandardModules(cfg ModuleConfig) []smartfam.Module {
	return []smartfam.Module{
		WordCountModule(cfg),
		StringMatchModule(cfg),
		MatMulModule(cfg),
		DBSelectModule(cfg),
		KMeansModule(cfg),
	}
}

// WordCountModule returns the wordcount data-intensive module.
func WordCountModule(cfg ModuleConfig) smartfam.Module {
	return smartfam.ModuleFunc{
		ModuleName: ModuleWordCount,
		Fn: func(ctx context.Context, raw []byte) ([]byte, error) {
			var p WordCountParams
			if err := Decode(raw, &p); err != nil {
				return nil, err
			}
			if p.DataFile == "" {
				return nil, fmt.Errorf("core: wordcount requires data_file")
			}
			store := cfg.Store
			if p.Sealed {
				if p.RangeBytes > 0 {
					return nil, fmt.Errorf("core: wordcount: sealed fragments exclude byte ranges")
				}
				store = SealedStore(store)
			}
			var input io.Reader
			if p.RangeBytes > 0 {
				// Fleet scatter unit: open one byte of lead-in context and
				// serve the word-aligned view of the byte range. The scan
				// length is declared so remote stores prefetch only the
				// range, not their full read-ahead window.
				lead := partition.LeadIn(p.RangeOffset)
				f, err := OpenRange(store, p.DataFile, lead, p.RangeOffset+p.RangeBytes-lead)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				input, err = partition.NewRangeReader(f, p.RangeOffset, p.RangeOffset+p.RangeBytes, nil)
				if err != nil {
					return nil, err
				}
			} else {
				f, err := store.Open(p.DataFile)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				input = bufio.NewReaderSize(f, 1<<20)
			}

			start := time.Now()
			// The fragment-parallel driver is the module default; the
			// strictly-sequential driver stays available for memory-tight
			// nodes via Sequential.
			driver := partition.RunParallel[string, int, int]
			if p.Sequential {
				driver = partition.Run[string, int, int]
			}
			res, err := driver(ctx, cfg.mrConfig(cfg.workers(p.Workers)),
				workloads.WordCountSpec(), input,
				partition.Options{FragmentSize: cfg.partitionBytes(p.PartitionBytes, workloads.WordCountFootprint)},
				workloads.WordCountMerge)
			if err != nil {
				return nil, err
			}
			out := WordCountOutput{
				UniqueWords:  len(res.Pairs),
				Fragments:    res.Fragments,
				FragmentKeys: res.Stats.FragmentKeys,
				ElapsedMs:    time.Since(start).Milliseconds(),
				ShuffleMs:    res.Stats.ShuffleTime.Milliseconds(),
				MergeMs:      res.Stats.MergeTime.Milliseconds(),
			}
			counts := make(map[string]int, len(res.Pairs))
			for _, pr := range res.Pairs {
				out.TotalWords += int64(pr.Value)
				counts[pr.Key] = pr.Value
			}
			topN := p.TopN
			if topN <= 0 {
				topN = 100
			}
			for _, pr := range workloads.TopWords(counts, topN) {
				out.Top = append(out.Top, WordFreq{Word: pr.Key, Count: pr.Value})
			}
			if p.EmitPairs {
				out.Pairs = make([]WordFreq, len(res.Pairs))
				for i, pr := range res.Pairs {
					out.Pairs[i] = WordFreq{Word: pr.Key, Count: pr.Value}
				}
			}
			return encode(out)
		},
	}
}

// StringMatchModule returns the stringmatch data-intensive module.
func StringMatchModule(cfg ModuleConfig) smartfam.Module {
	return smartfam.ModuleFunc{
		ModuleName: ModuleStringMatch,
		Fn: func(ctx context.Context, raw []byte) ([]byte, error) {
			var p StringMatchParams
			if err := Decode(raw, &p); err != nil {
				return nil, err
			}
			if p.DataFile == "" || p.KeysFile == "" {
				return nil, fmt.Errorf("core: stringmatch requires data_file and keys_file")
			}
			keys, err := readLines(cfg.Store, p.KeysFile)
			if err != nil {
				return nil, err
			}
			if len(keys) == 0 {
				return nil, fmt.Errorf("core: keys file %s is empty", p.KeysFile)
			}
			f, err := cfg.Store.Open(p.DataFile)
			if err != nil {
				return nil, err
			}
			defer f.Close()

			start := time.Now()
			driver := partition.RunParallel[string, string, []string]
			if p.Sequential {
				driver = partition.Run[string, string, []string]
			}
			res, err := driver(ctx, cfg.mrConfig(cfg.workers(p.Workers)),
				workloads.StringMatchSpec(keys), bufio.NewReaderSize(f, 1<<20),
				partition.Options{FragmentSize: cfg.partitionBytes(p.PartitionBytes, workloads.StringMatchFootprint), Delimiters: []byte{'\n'}},
				workloads.StringMatchMerge)
			if err != nil {
				return nil, err
			}
			sampleMax := p.SampleLines
			if sampleMax <= 0 {
				sampleMax = 10
			}
			out := StringMatchOutput{
				HitsPerKey: make(map[string]int, len(res.Pairs)),
				Fragments:  res.Fragments,
				ElapsedMs:  time.Since(start).Milliseconds(),
			}
			for _, pr := range res.Pairs {
				out.HitsPerKey[pr.Key] = len(pr.Value)
				out.TotalHits += int64(len(pr.Value))
				for _, line := range pr.Value {
					if len(out.Sample) < sampleMax {
						out.Sample = append(out.Sample, line)
					}
				}
			}
			return encode(out)
		},
	}
}

// MatMulModule returns the matmul module (the computation-intensive
// benchmark; offloadable for completeness, though the McSD framework
// normally keeps it on the host).
func MatMulModule(cfg ModuleConfig) smartfam.Module {
	return smartfam.ModuleFunc{
		ModuleName: ModuleMatMul,
		Fn: func(ctx context.Context, raw []byte) ([]byte, error) {
			var p MatMulParams
			if err := Decode(raw, &p); err != nil {
				return nil, err
			}
			if p.N <= 0 {
				return nil, fmt.Errorf("core: matmul requires n > 0")
			}
			a := workloads.RandomMatrix(p.N, p.N, p.SeedA)
			b := workloads.RandomMatrix(p.N, p.N, p.SeedB)
			start := time.Now()
			res, err := mapreduce.Run(ctx, cfg.mrConfig(cfg.workers(p.Workers)),
				workloads.MatMulSpec(a, b), workloads.RowIndexInput(p.N))
			if err != nil {
				return nil, err
			}
			c, err := workloads.AssembleMatrix(p.N, p.N, res.Pairs)
			if err != nil {
				return nil, err
			}
			out := MatMulOutput{N: p.N, ElapsedMs: time.Since(start).Milliseconds()}
			for i := 0; i < p.N; i++ {
				out.Trace += c.At(i, i)
			}
			for _, v := range c.Data {
				out.FrobSq += v * v
			}
			return encode(out)
		},
	}
}

// readLines reads a whole file from the store and splits it into non-empty
// lines.
func readLines(store DataStore, name string) ([]string, error) {
	f, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("core: reading %s: %w", name, err)
	}
	return lines, nil
}
