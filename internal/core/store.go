// Package core is the McSD programming framework: the public runtime a
// host application links against to write MapReduce-like code whose
// data-intensive parts are automatically offloaded to multicore smart
// storage nodes (§IV), plus the standard data-intensive modules those
// nodes preload.
//
// The framework owns what the paper's §I promises: computation offload
// (via smartFAM log files over the share), data partitioning (the Fig. 6
// extension, applied on the SD side), and load balancing (the host-side
// computation-intensive function runs concurrently with the offloaded
// function; jobs spread across SD nodes; failed nodes fail over).
package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mcsd/internal/nfs"
)

// DataStore abstracts where a module's input data lives: the SD node's
// local disk (DirStore — the fast path that makes smart storage smart) or
// the share seen from the host (NFSStore — the slow path a host-only run
// is forced through).
type DataStore interface {
	// Open returns a streaming reader for the named file.
	Open(name string) (io.ReadCloser, error)
	// Size returns the file's size in bytes.
	Size(name string) (int64, error)
}

// DirStore returns a DataStore over a local directory.
func DirStore(root string) DataStore { return &dirStore{root: root} }

type dirStore struct {
	root string
}

func (d *dirStore) path(name string) (string, error) {
	if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, `\`) {
		return "", fmt.Errorf("core: invalid data path %q", name)
	}
	for _, part := range strings.Split(name, "/") {
		if part == "" || part == "." || part == ".." {
			return "", fmt.Errorf("core: invalid data path %q", name)
		}
	}
	return filepath.Join(d.root, filepath.FromSlash(name)), nil
}

func (d *dirStore) Open(name string) (io.ReadCloser, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("core: open %s: %w", name, err)
	}
	return f, nil
}

func (d *dirStore) Size(name string) (int64, error) {
	p, err := d.path(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return 0, fmt.Errorf("core: stat %s: %w", name, err)
	}
	return fi.Size(), nil
}

// RemoteStore is the slice of the share-client surface a DataStore needs;
// *nfs.Client, *nfs.Pool and *nfs.CachedFS all satisfy it.
type RemoteStore interface {
	OpenReader(name string) (io.ReadCloser, error)
	Stat(name string) (int64, time.Time, error)
}

// NFSStore returns a DataStore over a mounted share — host-side access to
// SD-resident data, paying network costs for every byte.
func NFSStore(c *nfs.Client) DataStore { return RemoteDataStore(c) }

// RemoteDataStore returns a DataStore over any share client. Wrap the
// client in an nfs.CachedFS first to serve repeated reads from the
// host-side block cache instead of the wire.
func RemoteDataStore(fs RemoteStore) DataStore { return &nfsStore{fs: fs} }

// CachedNFSStore fronts a share client with a host-side block cache and
// returns both the DataStore and the caching FS (attach the latter with
// Runtime.AttachSD so smartFAM result reads share the same cache).
func CachedNFSStore(t nfs.Transport, cacheBytes int64) (DataStore, *nfs.CachedFS) {
	cfs := nfs.NewCachedFS(t, nfs.NewBlockCache(cacheBytes, nil))
	return RemoteDataStore(cfs), cfs
}

type nfsStore struct {
	fs RemoteStore
}

func (s *nfsStore) Open(name string) (io.ReadCloser, error) {
	return s.fs.OpenReader(name)
}

func (s *nfsStore) Size(name string) (int64, error) {
	size, _, err := s.fs.Stat(name)
	return size, err
}
