// Package core is the McSD programming framework: the public runtime a
// host application links against to write MapReduce-like code whose
// data-intensive parts are automatically offloaded to multicore smart
// storage nodes (§IV), plus the standard data-intensive modules those
// nodes preload.
//
// The framework owns what the paper's §I promises: computation offload
// (via smartFAM log files over the share), data partitioning (the Fig. 6
// extension, applied on the SD side), and load balancing (the host-side
// computation-intensive function runs concurrently with the offloaded
// function; jobs spread across SD nodes; failed nodes fail over).
package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mcsd/internal/nfs"
)

// DataStore abstracts where a module's input data lives: the SD node's
// local disk (DirStore — the fast path that makes smart storage smart) or
// the share seen from the host (NFSStore — the slow path a host-only run
// is forced through).
type DataStore interface {
	// Open returns a streaming reader for the named file.
	Open(name string) (io.ReadCloser, error)
	// Size returns the file's size in bytes.
	Size(name string) (int64, error)
}

// DirStore returns a DataStore over a local directory.
func DirStore(root string) DataStore { return &dirStore{root: root} }

type dirStore struct {
	root string
}

func (d *dirStore) path(name string) (string, error) {
	if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, `\`) {
		return "", fmt.Errorf("core: invalid data path %q", name)
	}
	for _, part := range strings.Split(name, "/") {
		if part == "" || part == "." || part == ".." {
			return "", fmt.Errorf("core: invalid data path %q", name)
		}
	}
	return filepath.Join(d.root, filepath.FromSlash(name)), nil
}

func (d *dirStore) Open(name string) (io.ReadCloser, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("core: open %s: %w", name, err)
	}
	return f, nil
}

func (d *dirStore) Size(name string) (int64, error) {
	p, err := d.path(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return 0, fmt.Errorf("core: stat %s: %w", name, err)
	}
	return fi.Size(), nil
}

// NFSStore returns a DataStore over a mounted share — host-side access to
// SD-resident data, paying network costs for every byte.
func NFSStore(c *nfs.Client) DataStore { return &nfsStore{c: c} }

type nfsStore struct {
	c *nfs.Client
}

func (s *nfsStore) Open(name string) (io.ReadCloser, error) {
	return s.c.OpenReader(name)
}

func (s *nfsStore) Size(name string) (int64, error) {
	size, _, err := s.c.Stat(name)
	return size, err
}
