// Package core is the McSD programming framework: the public runtime a
// host application links against to write MapReduce-like code whose
// data-intensive parts are automatically offloaded to multicore smart
// storage nodes (§IV), plus the standard data-intensive modules those
// nodes preload.
//
// The framework owns what the paper's §I promises: computation offload
// (via smartFAM log files over the share), data partitioning (the Fig. 6
// extension, applied on the SD side), and load balancing (the host-side
// computation-intensive function runs concurrently with the offloaded
// function; jobs spread across SD nodes; failed nodes fail over).
package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mcsd/internal/nfs"
)

// DataStore abstracts where a module's input data lives: the SD node's
// local disk (DirStore — the fast path that makes smart storage smart) or
// the share seen from the host (NFSStore — the slow path a host-only run
// is forced through).
type DataStore interface {
	// Open returns a streaming reader for the named file.
	Open(name string) (io.ReadCloser, error)
	// Size returns the file's size in bytes.
	Size(name string) (int64, error)
}

// DirStore returns a DataStore over a local directory.
func DirStore(root string) DataStore { return &dirStore{root: root} }

type dirStore struct {
	root string
}

func (d *dirStore) path(name string) (string, error) {
	if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, `\`) {
		return "", fmt.Errorf("core: invalid data path %q", name)
	}
	for _, part := range strings.Split(name, "/") {
		if part == "" || part == "." || part == ".." {
			return "", fmt.Errorf("core: invalid data path %q", name)
		}
	}
	return filepath.Join(d.root, filepath.FromSlash(name)), nil
}

func (d *dirStore) Open(name string) (io.ReadCloser, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("core: open %s: %w", name, err)
	}
	return f, nil
}

func (d *dirStore) OpenAt(name string, off int64) (io.ReadCloser, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("core: open %s: %w", name, err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("core: seek %s to %d: %w", name, off, err)
	}
	return f, nil
}

func (d *dirStore) Size(name string) (int64, error) {
	p, err := d.path(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return 0, fmt.Errorf("core: stat %s: %w", name, err)
	}
	return fi.Size(), nil
}

// RangeOpener is the optional DataStore extension the fleet's scatter path
// needs: open a file positioned at a byte offset so an SD node reads only
// its assigned fragment range instead of streaming from byte zero.
type RangeOpener interface {
	// OpenAt returns a streaming reader positioned at off.
	OpenAt(name string, off int64) (io.ReadCloser, error)
}

// OpenAt opens name at off through the store's native range support when it
// has any, and otherwise by discarding the prefix — correct on every store,
// just paying the wasted bytes that RangeOpener implementations avoid.
func OpenAt(store DataStore, name string, off int64) (io.ReadCloser, error) {
	if off < 0 {
		return nil, fmt.Errorf("core: negative offset %d for %s", off, name)
	}
	if ro, ok := store.(RangeOpener); ok {
		return ro.OpenAt(name, off)
	}
	f, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	if off > 0 {
		if _, err := io.CopyN(io.Discard, f, off); err != nil {
			f.Close()
			return nil, fmt.Errorf("core: skipping to offset %d of %s: %w", off, name, err)
		}
	}
	return f, nil
}

// RangeScanOpener is the length-aware refinement of RangeOpener: the store
// is told how many bytes the scan intends to consume, so remote
// implementations can bound their read-ahead to the range instead of
// dragging a full prefetch window over the wire for a short fragment. The
// returned reader must still serve bytes past off+length on demand — a
// range scan may finish a record that straddles the boundary.
type RangeScanOpener interface {
	OpenRange(name string, off, length int64) (io.ReadCloser, error)
}

// OpenRange opens name at off for a scan of about length bytes. Stores with
// length-aware range support bound their prefetching to the range; others
// degrade to OpenAt, which is correct but may over-fetch. length <= 0 means
// unknown.
func OpenRange(store DataStore, name string, off, length int64) (io.ReadCloser, error) {
	if off < 0 {
		return nil, fmt.Errorf("core: negative offset %d for %s", off, name)
	}
	if ro, ok := store.(RangeScanOpener); ok && length > 0 {
		return ro.OpenRange(name, off, length)
	}
	return OpenAt(store, name, off)
}

// RemoteStore is the slice of the share-client surface a DataStore needs;
// *nfs.Client, *nfs.Pool and *nfs.CachedFS all satisfy it.
type RemoteStore interface {
	OpenReader(name string) (io.ReadCloser, error)
	Stat(name string) (int64, time.Time, error)
}

// NFSStore returns a DataStore over a mounted share — host-side access to
// SD-resident data, paying network costs for every byte.
func NFSStore(c *nfs.Client) DataStore { return RemoteDataStore(c) }

// RemoteDataStore returns a DataStore over any share client. Wrap the
// client in an nfs.CachedFS first to serve repeated reads from the
// host-side block cache instead of the wire.
func RemoteDataStore(fs RemoteStore) DataStore { return &nfsStore{fs: fs} }

// CachedNFSStore fronts a share client with a host-side block cache and
// returns both the DataStore and the caching FS (attach the latter with
// Runtime.AttachSD so smartFAM result reads share the same cache).
func CachedNFSStore(t nfs.Transport, cacheBytes int64) (DataStore, *nfs.CachedFS) {
	cfs := nfs.NewCachedFS(t, nfs.NewBlockCache(cacheBytes, nil))
	return RemoteDataStore(cfs), cfs
}

type nfsStore struct {
	fs RemoteStore
}

func (s *nfsStore) Open(name string) (io.ReadCloser, error) {
	return s.fs.OpenReader(name)
}

func (s *nfsStore) OpenAt(name string, off int64) (io.ReadCloser, error) {
	// Every share client (nfs.Client, nfs.Pool, nfs.CachedFS) supports
	// offset opens; fall back to a skip for exotic RemoteStore stubs.
	if ra, ok := s.fs.(interface {
		OpenReaderAt(name string, off int64) (io.ReadCloser, error)
	}); ok {
		return ra.OpenReaderAt(name, off)
	}
	f, err := s.fs.OpenReader(name)
	if err != nil {
		return nil, err
	}
	if off > 0 {
		if _, err := io.CopyN(io.Discard, f, off); err != nil {
			f.Close()
			return nil, fmt.Errorf("core: skipping to offset %d of %s: %w", off, name, err)
		}
	}
	return f, nil
}

func (s *nfsStore) OpenRange(name string, off, length int64) (io.ReadCloser, error) {
	// nfs.Client bounds its pipelined read-ahead to a declared range;
	// clients without that refinement (Pool, CachedFS) fall back to the
	// plain offset open.
	if rr, ok := s.fs.(interface {
		OpenRangeReader(name string, off, length int64) (io.ReadCloser, error)
	}); ok {
		return rr.OpenRangeReader(name, off, length)
	}
	return s.OpenAt(name, off)
}

func (s *nfsStore) Size(name string) (int64, error) {
	size, _, err := s.fs.Stat(name)
	return size, err
}
