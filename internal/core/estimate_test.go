package core

import (
	"bytes"
	"io"
	"testing"

	"mcsd/internal/memsim"
	"mcsd/internal/partition"
	"mcsd/internal/workloads"
)

// sizeStore is a DataStore of fixed sizes — estimation never opens files.
type sizeStore map[string]int64

func (s sizeStore) Open(name string) (io.ReadCloser, error) {
	return io.NopCloser(bytes.NewReader(nil)), nil
}

func (s sizeStore) Size(name string) (int64, error) {
	n, ok := s[name]
	if !ok {
		return 0, io.ErrUnexpectedEOF
	}
	return n, nil
}

func TestFootprintEstimatorSizesModules(t *testing.T) {
	store := sizeStore{"big.txt": 1 << 30, "small.txt": 4 << 10, "sales.csv": 8 << 20}
	est := NewFootprintEstimator(store, nil)

	// Native word count charges the whole input at the workload's factor.
	in, f := est(ModuleWordCount, mustEncode(t, WordCountParams{DataFile: "big.txt"}))
	if in != 1<<30 || f != workloads.WordCountFootprint {
		t.Fatalf("wordcount native = (%d, %v), want whole input at %v×", in, f, workloads.WordCountFootprint)
	}

	// A partitioned run holds at most two fragments resident.
	in, _ = est(ModuleWordCount, mustEncode(t, WordCountParams{DataFile: "big.txt", PartitionBytes: 64 << 20}))
	if in != 2*(64<<20) {
		t.Fatalf("wordcount partitioned = %d, want two fragments", in)
	}

	// Inputs smaller than two fragments charge their true size.
	in, _ = est(ModuleStringMatch, mustEncode(t, StringMatchParams{DataFile: "small.txt", PartitionBytes: 64 << 20}))
	if in != 4<<10 {
		t.Fatalf("stringmatch small = %d, want true size", in)
	}
	if _, f = est(ModuleStringMatch, mustEncode(t, StringMatchParams{DataFile: "small.txt"})); f != workloads.StringMatchFootprint {
		t.Fatalf("stringmatch factor = %v, want %v", f, workloads.StringMatchFootprint)
	}

	// AutoPartition resolves through the memory model like the module will.
	acct := memsim.NewAccountant(memsim.DefaultConfig())
	est = NewFootprintEstimator(store, acct)
	frag := partition.AutoFragmentSize(acct.Config(), workloads.WordCountFootprint)
	in, _ = est(ModuleWordCount, mustEncode(t, WordCountParams{DataFile: "big.txt", PartitionBytes: AutoPartition}))
	if want := min(int64(1<<30), 2*frag); in != want {
		t.Fatalf("auto-partitioned charge = %d, want %d", in, want)
	}

	// matmul is priced from its matrix dimensions, not a file.
	in, f = est(ModuleMatMul, mustEncode(t, MatMulParams{N: 100}))
	if in != 100*100*8*3 || f != 1.0 {
		t.Fatalf("matmul = (%d, %v), want three dense matrices", in, f)
	}
}

func TestFootprintEstimatorFailsOpen(t *testing.T) {
	est := NewFootprintEstimator(sizeStore{}, nil)
	cases := []struct {
		name   string
		module string
		params []byte
	}{
		{"unknown module", "ghost", []byte(`{}`)},
		{"malformed payload", ModuleWordCount, []byte(`{"data_file":3}`)},
		{"missing file", ModuleWordCount, mustEncode(t, WordCountParams{DataFile: "nope.txt"})},
	}
	for _, tc := range cases {
		if in, _ := est(tc.module, tc.params); in != 0 {
			t.Fatalf("%s: charged %d bytes, want 0 (admit freely)", tc.name, in)
		}
	}
}
