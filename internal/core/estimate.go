package core

import (
	"encoding/json"

	"mcsd/internal/memsim"
	"mcsd/internal/partition"
	"mcsd/internal/sched"
	"mcsd/internal/workloads"
)

// NewFootprintEstimator prices the standard modules' requests for the
// scheduler's memory-aware admission control: it sizes the input from the
// store and pairs it with the workload's footprint factor (DESIGN.md §3 —
// word count peaks near 3× its input, string match near 2×), so the
// scheduler can keep concurrent jobs out of the swap-thrash region.
//
// Partitioned runs never hold the whole input resident: the effective
// input charged is capped at two fragments (the pipelined driver's
// resident fragment plus the one in flight). An unknown module, a
// malformed payload, or a missing file estimates to zero bytes — the
// scheduler admits such jobs freely rather than guessing.
func NewFootprintEstimator(store DataStore, mem *memsim.Accountant) sched.Estimator {
	memCfg := memsim.DefaultConfig()
	if mem != nil {
		memCfg = mem.Config()
	}
	// resolve mirrors ModuleConfig.partitionBytes for AutoPartition so the
	// estimate matches what the module will actually do.
	resolve := func(requested int64, factor float64) int64 {
		if requested >= 0 {
			return requested
		}
		return partition.AutoFragmentSize(memCfg, factor)
	}
	size := func(name string) int64 {
		if name == "" || store == nil {
			return 0
		}
		n, err := store.Size(name)
		if err != nil {
			return 0
		}
		return n
	}
	// charge caps a partitioned run at two resident fragments.
	charge := func(total, fragment int64) int64 {
		if fragment <= 0 || total <= 2*fragment {
			return total
		}
		return 2 * fragment
	}

	return func(module string, params []byte) (int64, float64) {
		switch module {
		case ModuleWordCount:
			var p WordCountParams
			if json.Unmarshal(params, &p) != nil {
				return 0, 0
			}
			frag := resolve(p.PartitionBytes, workloads.WordCountFootprint)
			return charge(size(p.DataFile), frag), workloads.WordCountFootprint
		case ModuleStringMatch:
			var p StringMatchParams
			if json.Unmarshal(params, &p) != nil {
				return 0, 0
			}
			frag := resolve(p.PartitionBytes, workloads.StringMatchFootprint)
			return charge(size(p.DataFile), frag), workloads.StringMatchFootprint
		case ModuleDBSelect:
			var p DBSelectParams
			if json.Unmarshal(params, &p) != nil {
				return 0, 0
			}
			const dbFootprint = 1.5
			frag := resolve(p.PartitionBytes, dbFootprint)
			return charge(size(p.DataFile), frag), dbFootprint
		case ModuleKMeans:
			var p KMeansParams
			if json.Unmarshal(params, &p) != nil {
				return 0, 0
			}
			const kmFootprint = 1.1 // nearly streaming: fixed centroid table
			frag := resolve(p.PartitionBytes, kmFootprint)
			return charge(size(p.DataFile), frag), kmFootprint
		case ModuleMatMul:
			var p MatMulParams
			if json.Unmarshal(params, &p) != nil || p.N <= 0 {
				return 0, 0
			}
			// Three dense n×n float64 matrices resident (A, B, C).
			return int64(p.N) * int64(p.N) * 8 * 3, 1.0
		default:
			return 0, 0
		}
	}
}
