package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcsd/internal/memsim"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

// writeDataFile drops a file into a fresh data dir and returns the store.
func dataDir(t *testing.T) (DataStore, string) {
	t.Helper()
	dir := t.TempDir()
	return DirStore(dir), dir
}

func writeFile(t *testing.T, dir, name string, data []byte) {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDirStoreOpenAndSize(t *testing.T) {
	store, dir := dataDir(t)
	writeFile(t, dir, "f.txt", []byte("hello"))
	size, err := store.Size("f.txt")
	if err != nil || size != 5 {
		t.Fatalf("Size = (%d, %v), want 5", size, err)
	}
	f, err := store.Open("f.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 5)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
}

func TestDirStoreRejectsEscapes(t *testing.T) {
	store, _ := dataDir(t)
	for _, bad := range []string{"", "/abs", "../up", "a/../b", `a\b`} {
		if _, err := store.Open(bad); err == nil {
			t.Errorf("Open(%q) accepted", bad)
		}
		if _, err := store.Size(bad); err == nil {
			t.Errorf("Size(%q) accepted", bad)
		}
	}
}

func TestWordCountModule(t *testing.T) {
	store, dir := dataDir(t)
	text := workloads.GenerateTextBytes(60_000, 7)
	writeFile(t, dir, "corpus.txt", text)

	mod := WordCountModule(ModuleConfig{Store: store, Workers: 2})
	raw, err := mod.Run(context.Background(), mustEncode(t, WordCountParams{
		DataFile: "corpus.txt", PartitionBytes: 8 << 10, TopN: 5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	var out WordCountOutput
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	want := workloads.WordCountSeq(text)
	var wantTotal int64
	for _, c := range want {
		wantTotal += int64(c)
	}
	if out.TotalWords != wantTotal {
		t.Fatalf("TotalWords = %d, want %d", out.TotalWords, wantTotal)
	}
	if out.UniqueWords != len(want) {
		t.Fatalf("UniqueWords = %d, want %d", out.UniqueWords, len(want))
	}
	if len(out.Top) != 5 {
		t.Fatalf("Top has %d entries, want 5", len(out.Top))
	}
	wantTop := workloads.TopWords(want, 1)[0]
	if out.Top[0].Word != wantTop.Key || out.Top[0].Count != wantTop.Value {
		t.Fatalf("Top[0] = %+v, want %v:%d", out.Top[0], wantTop.Key, wantTop.Value)
	}
	if out.Fragments < 2 {
		t.Fatalf("Fragments = %d, want partitioned run", out.Fragments)
	}
}

func TestWordCountModuleNativeMode(t *testing.T) {
	store, dir := dataDir(t)
	writeFile(t, dir, "small.txt", []byte("a b a"))
	mod := WordCountModule(ModuleConfig{Store: store, Workers: 1})
	raw, err := mod.Run(context.Background(), mustEncode(t, WordCountParams{DataFile: "small.txt"}))
	if err != nil {
		t.Fatal(err)
	}
	var out WordCountOutput
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Fragments != 1 || out.TotalWords != 3 || out.UniqueWords != 2 {
		t.Fatalf("native run = %+v", out)
	}
}

func TestWordCountModuleErrors(t *testing.T) {
	store, _ := dataDir(t)
	mod := WordCountModule(ModuleConfig{Store: store})
	if _, err := mod.Run(context.Background(), []byte("{}")); err == nil {
		t.Fatal("missing data_file accepted")
	}
	if _, err := mod.Run(context.Background(),
		mustEncode(t, WordCountParams{DataFile: "ghost.txt"})); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := mod.Run(context.Background(), []byte("not json")); err == nil {
		t.Fatal("garbage params accepted")
	}
}

func TestWordCountModuleMemoryWall(t *testing.T) {
	store, dir := dataDir(t)
	text := workloads.GenerateTextBytes(30_000, 3)
	writeFile(t, dir, "big.txt", text)
	acct := memsim.NewAccountant(memsim.Config{CapacityBytes: 32 << 10, UsableFraction: 1.0})
	mod := WordCountModule(ModuleConfig{Store: store, Workers: 1, Memory: acct})

	// Native: 3x30000 = 90000 > 32768 -> OOM.
	_, err := mod.Run(context.Background(), mustEncode(t, WordCountParams{DataFile: "big.txt"}))
	if !errors.Is(err, memsim.ErrOutOfMemory) {
		t.Fatalf("native err = %v, want ErrOutOfMemory", err)
	}
	// Partitioned at 8 KiB fragments: fits.
	raw, err := mod.Run(context.Background(), mustEncode(t, WordCountParams{
		DataFile: "big.txt", PartitionBytes: 8 << 10,
	}))
	if err != nil {
		t.Fatalf("partitioned run failed: %v", err)
	}
	var out WordCountOutput
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	want := workloads.WordCountSeq(text)
	if out.UniqueWords != len(want) {
		t.Fatalf("partitioned UniqueWords = %d, want %d", out.UniqueWords, len(want))
	}
}

func TestWordCountModuleAutoPartition(t *testing.T) {
	store, dir := dataDir(t)
	text := workloads.GenerateTextBytes(64_000, 19)
	writeFile(t, dir, "corpus.txt", text)
	// A 32 KiB node: auto sizing must pick fragments that keep the 3x WC
	// footprint within half of usable RAM, so a 64 KB input becomes
	// several fragments and the run succeeds where native would OOM.
	acct := memsim.NewAccountant(memsim.Config{
		CapacityBytes: 32 << 10, UsableFraction: 1.0, SwapBytes: 0})
	mod := WordCountModule(ModuleConfig{Store: store, Workers: 1, Memory: acct})

	raw, err := mod.Run(context.Background(), mustEncode(t, WordCountParams{
		DataFile: "corpus.txt", PartitionBytes: AutoPartition,
	}))
	if err != nil {
		t.Fatalf("auto-partitioned run failed: %v", err)
	}
	var out WordCountOutput
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Fragments < 2 {
		t.Fatalf("auto partitioning produced %d fragments, want several on a tiny node", out.Fragments)
	}
	want := workloads.WordCountSeq(text)
	if out.UniqueWords != len(want) {
		t.Fatalf("UniqueWords = %d, want %d", out.UniqueWords, len(want))
	}
}

func TestModuleConfigPartitionBytesResolution(t *testing.T) {
	cfg := ModuleConfig{}
	if got := cfg.partitionBytes(600<<20, 3); got != 600<<20 {
		t.Fatalf("explicit size changed: %d", got)
	}
	if got := cfg.partitionBytes(0, 3); got != 0 {
		t.Fatalf("native mode changed: %d", got)
	}
	auto := cfg.partitionBytes(AutoPartition, 3)
	if auto <= 0 {
		t.Fatalf("auto size = %d", auto)
	}
	// With a Table I node (2 GB) the auto fragment's 3x footprint must
	// fit in half of usable RAM.
	mem := memsim.DefaultConfig()
	if float64(auto)*3 > float64(mem.Usable())/2+1 {
		t.Fatalf("auto fragment %d too large for default node", auto)
	}
}

func TestWordCountModulePipelined(t *testing.T) {
	store, dir := dataDir(t)
	text := workloads.GenerateTextBytes(50_000, 13)
	writeFile(t, dir, "corpus.txt", text)
	mod := WordCountModule(ModuleConfig{Store: store, Workers: 2})

	run := func(sequential bool) WordCountOutput {
		raw, err := mod.Run(context.Background(), mustEncode(t, WordCountParams{
			DataFile: "corpus.txt", PartitionBytes: 8 << 10, Sequential: sequential,
		}))
		if err != nil {
			t.Fatal(err)
		}
		var out WordCountOutput
		if err := Decode(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, pip := run(true), run(false)
	if seq.TotalWords != pip.TotalWords || seq.UniqueWords != pip.UniqueWords ||
		seq.Fragments != pip.Fragments {
		t.Fatalf("pipelined output differs: %+v vs %+v", pip, seq)
	}
	// Both drivers must report the per-fragment key sum.
	if pip.FragmentKeys < pip.UniqueWords || seq.FragmentKeys != pip.FragmentKeys {
		t.Fatalf("FragmentKeys: sequential %d, pipelined %d, unique %d",
			seq.FragmentKeys, pip.FragmentKeys, pip.UniqueWords)
	}
}

func TestStringMatchModule(t *testing.T) {
	store, dir := dataDir(t)
	keys := workloads.GenerateKeys(6, 11)
	enc := workloads.GenerateEncryptBytes(50_000, 12, keys, 0.2)
	writeFile(t, dir, "encrypt.txt", enc)
	writeFile(t, dir, "keys.txt", []byte(strings.Join(keys, "\n")+"\n"))

	mod := StringMatchModule(ModuleConfig{Store: store, Workers: 2})
	raw, err := mod.Run(context.Background(), mustEncode(t, StringMatchParams{
		DataFile: "encrypt.txt", KeysFile: "keys.txt", PartitionBytes: 4096, SampleLines: 3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	var out StringMatchOutput
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	seq := workloads.StringMatchSeq(enc, keys)
	if out.TotalHits != int64(len(seq)) {
		t.Fatalf("TotalHits = %d, want %d", out.TotalHits, len(seq))
	}
	wantPerKey := make(map[string]int)
	for _, m := range seq {
		wantPerKey[m.Key]++
	}
	for k, n := range wantPerKey {
		if out.HitsPerKey[k] != n {
			t.Fatalf("HitsPerKey[%q] = %d, want %d", k, out.HitsPerKey[k], n)
		}
	}
	if len(out.Sample) > 3 {
		t.Fatalf("sample has %d lines, want <= 3", len(out.Sample))
	}
	for _, line := range out.Sample {
		found := false
		for _, k := range keys {
			if strings.Contains(line, k) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("sample line %q contains no key", line)
		}
	}
}

func TestStringMatchModuleErrors(t *testing.T) {
	store, dir := dataDir(t)
	writeFile(t, dir, "empty.keys", nil)
	writeFile(t, dir, "data.txt", []byte("x\n"))
	mod := StringMatchModule(ModuleConfig{Store: store})
	if _, err := mod.Run(context.Background(), mustEncode(t, StringMatchParams{DataFile: "data.txt"})); err == nil {
		t.Fatal("missing keys_file accepted")
	}
	if _, err := mod.Run(context.Background(), mustEncode(t, StringMatchParams{
		DataFile: "data.txt", KeysFile: "empty.keys",
	})); err == nil {
		t.Fatal("empty keys file accepted")
	}
}

func TestDBSelectModule(t *testing.T) {
	store, dir := dataDir(t)
	data := workloads.GenerateSalesBytes(30_000, 8)
	writeFile(t, dir, "sales.csv", data)
	mod := DBSelectModule(ModuleConfig{Store: store, Workers: 2})
	raw, err := mod.Run(context.Background(), mustEncode(t, DBSelectParams{
		DataFile: "sales.csv", GroupBy: "region", MinPrice: 100, PartitionBytes: 4096,
	}))
	if err != nil {
		t.Fatal(err)
	}
	var out DBSelectOutput
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	want, err := workloads.DBSelectSeq(data, workloads.DBQuery{GroupBy: "region", MinPrice: 100})
	if err != nil {
		t.Fatal(err)
	}
	if out.Groups != len(want) {
		t.Fatalf("Groups = %d, want %d", out.Groups, len(want))
	}
	for g, v := range want {
		diff := out.Revenue[g] - v
		if diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("Revenue[%s] = %v, want %v", g, out.Revenue[g], v)
		}
	}
	if out.Fragments < 2 {
		t.Fatalf("Fragments = %d, want partitioned run", out.Fragments)
	}
}

func TestDBSelectModuleErrors(t *testing.T) {
	store, dir := dataDir(t)
	writeFile(t, dir, "sales.csv", []byte("north,disk,3,5.00\n"))
	mod := DBSelectModule(ModuleConfig{Store: store})
	if _, err := mod.Run(context.Background(), mustEncode(t, DBSelectParams{GroupBy: "region"})); err == nil {
		t.Fatal("missing data_file accepted")
	}
	if _, err := mod.Run(context.Background(), mustEncode(t, DBSelectParams{
		DataFile: "sales.csv", GroupBy: "color",
	})); err == nil {
		t.Fatal("bad group_by accepted")
	}
}

func TestMatMulModule(t *testing.T) {
	store, _ := dataDir(t)
	mod := MatMulModule(ModuleConfig{Store: store, Workers: 2})
	raw, err := mod.Run(context.Background(), mustEncode(t, MatMulParams{N: 16, SeedA: 1, SeedB: 2}))
	if err != nil {
		t.Fatal(err)
	}
	var out MatMulOutput
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	// Cross-check against the sequential baseline.
	a := workloads.RandomMatrix(16, 16, 1)
	b := workloads.RandomMatrix(16, 16, 2)
	c, err := workloads.MatMulSeq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var trace, frob float64
	for i := 0; i < 16; i++ {
		trace += c.At(i, i)
	}
	for _, v := range c.Data {
		frob += v * v
	}
	if diff := out.Trace - trace; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Trace = %v, want %v", out.Trace, trace)
	}
	if diff := out.FrobSq - frob; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("FrobSq = %v, want %v", out.FrobSq, frob)
	}
}

func TestMatMulModuleRejectsBadN(t *testing.T) {
	store, _ := dataDir(t)
	mod := MatMulModule(ModuleConfig{Store: store})
	if _, err := mod.Run(context.Background(), mustEncode(t, MatMulParams{N: 0})); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestStandardModulesNames(t *testing.T) {
	store, _ := dataDir(t)
	mods := StandardModules(ModuleConfig{Store: store})
	if len(mods) != 5 {
		t.Fatalf("%d standard modules, want 5", len(mods))
	}
	names := map[string]bool{}
	for _, m := range mods {
		names[m.Name()] = true
	}
	for _, want := range []string{ModuleWordCount, ModuleStringMatch, ModuleMatMul, ModuleDBSelect, ModuleKMeans} {
		if !names[want] {
			t.Fatalf("missing standard module %q", want)
		}
	}
	// They register cleanly.
	reg := smartfam.NewRegistry(smartfam.DirFS(t.TempDir()))
	for _, m := range mods {
		if err := reg.Register(m); err != nil {
			t.Fatal(err)
		}
	}
}

func mustEncode(t *testing.T, v any) []byte {
	t.Helper()
	b, err := encode(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDecodeError(t *testing.T) {
	var out WordCountOutput
	if err := Decode([]byte("{"), &out); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestModuleConfigWorkers(t *testing.T) {
	cfg := ModuleConfig{Workers: 3}
	if cfg.workers(0) != 3 {
		t.Fatal("node default not used")
	}
	if cfg.workers(5) != 5 {
		t.Fatal("override not used")
	}
	if (ModuleConfig{}).workers(0) < 1 {
		t.Fatal("GOMAXPROCS fallback broken")
	}
}

func TestModuleFnErrorPropagatesAsString(t *testing.T) {
	// Regression guard: module errors travel through smartFAM as text.
	store, _ := dataDir(t)
	mod := WordCountModule(ModuleConfig{Store: store})
	_, err := mod.Run(context.Background(), mustEncode(t, WordCountParams{DataFile: "nope"}))
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err %v should name the missing file", err)
	}
	_ = fmt.Sprintf("%v", err)
}

// TestWordCountModuleRangeScatter runs the module once per byte range and
// checks the per-range word-aligned runs sum to exactly the whole-file
// result — the invariant the fleet coordinator relies on to scatter one
// file across SD nodes.
func TestWordCountModuleRangeScatter(t *testing.T) {
	store, dir := dataDir(t)
	text := workloads.GenerateTextBytes(50_000, 13)
	writeFile(t, dir, "corpus.txt", text)

	mod := WordCountModule(ModuleConfig{Store: store, Workers: 1})
	sum := map[string]int{}
	var totalWords int64
	const rangeBytes = 12_000
	for off := int64(0); off < int64(len(text)); off += rangeBytes {
		n := int64(len(text)) - off
		if n > rangeBytes {
			n = rangeBytes
		}
		raw, err := mod.Run(context.Background(), mustEncode(t, WordCountParams{
			DataFile: "corpus.txt", PartitionBytes: 4 << 10,
			RangeOffset: off, RangeBytes: n, EmitPairs: true,
		}))
		if err != nil {
			t.Fatalf("range at %d: %v", off, err)
		}
		var out WordCountOutput
		if err := Decode(raw, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Pairs) != out.UniqueWords {
			t.Fatalf("range at %d: %d pairs, UniqueWords %d", off, len(out.Pairs), out.UniqueWords)
		}
		for i := 1; i < len(out.Pairs); i++ {
			if out.Pairs[i-1].Word >= out.Pairs[i].Word {
				t.Fatalf("range at %d: pairs not strictly key-sorted at %d", off, i)
			}
		}
		for _, pr := range out.Pairs {
			sum[pr.Word] += pr.Count
		}
		totalWords += out.TotalWords
	}
	want := workloads.WordCountSeq(text)
	if len(sum) != len(want) {
		t.Fatalf("scattered runs cover %d words, want %d", len(sum), len(want))
	}
	var wantTotal int64
	for w, c := range want {
		wantTotal += int64(c)
		if sum[w] != c {
			t.Fatalf("word %q: scattered sum %d, want %d", w, sum[w], c)
		}
	}
	if totalWords != wantTotal {
		t.Fatalf("TotalWords sum = %d, want %d", totalWords, wantTotal)
	}
}

// TestOpenAtFallback exercises the prefix-discard path for stores without
// native range support.
func TestOpenAtFallback(t *testing.T) {
	store, dir := dataDir(t)
	writeFile(t, dir, "f.txt", []byte("0123456789"))
	// dirStore has native OpenAt; wrap it to hide the extension.
	plain := plainStore{store}
	for _, s := range []DataStore{store, plain} {
		f, err := OpenAt(s, "f.txt", 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(f)
		f.Close()
		if err != nil || string(got) != "456789" {
			t.Fatalf("OpenAt(%T) = %q, %v", s, got, err)
		}
	}
	if _, err := OpenAt(store, "f.txt", -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

type plainStore struct{ s DataStore }

func (p plainStore) Open(name string) (io.ReadCloser, error) { return p.s.Open(name) }
func (p plainStore) Size(name string) (int64, error)         { return p.s.Size(name) }
