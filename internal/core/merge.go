package core

import "mcsd/internal/workloads"

// Helpers for folding per-shard module outputs when a job is spread over
// several SD nodes with RunSharded (§VI multi-SD parallelism). String
// match and dbselect merge exactly; word count's frequency table merges
// only approximately because shards report truncated top lists.

// MergeStringMatchOutputs folds shard outputs exactly: per-key hit counts
// and totals add; samples concatenate up to sampleMax (0 = keep all).
func MergeStringMatchOutputs(shards []StringMatchOutput, sampleMax int) StringMatchOutput {
	out := StringMatchOutput{HitsPerKey: make(map[string]int)}
	for _, s := range shards {
		for k, n := range s.HitsPerKey {
			out.HitsPerKey[k] += n
		}
		out.TotalHits += s.TotalHits
		out.Fragments += s.Fragments
		out.ElapsedMs += s.ElapsedMs
		for _, line := range s.Sample {
			if sampleMax <= 0 || len(out.Sample) < sampleMax {
				out.Sample = append(out.Sample, line)
			}
		}
	}
	return out
}

// MergeDBSelectOutputs folds shard outputs exactly: revenue sums add per
// group.
func MergeDBSelectOutputs(shards []DBSelectOutput) DBSelectOutput {
	out := DBSelectOutput{Revenue: make(map[string]float64)}
	for _, s := range shards {
		for g, v := range s.Revenue {
			out.Revenue[g] += v
		}
		out.Fragments += s.Fragments
		out.ElapsedMs += s.ElapsedMs
	}
	out.Groups = len(out.Revenue)
	return out
}

// MergeWordCountOutputs folds shard outputs: TotalWords and Fragments add
// exactly; the frequency table is the merge of the shards' truncated Top
// lists, re-ranked — a lower bound on each merged word's true count is
// exact only for words present in every shard's list (the standard
// distributed top-k caveat), so UniqueWords is reported as the number of
// distinct words observed across the Top lists, not the global unique
// count. Ask shards for a generous TopN when merged rankings matter.
func MergeWordCountOutputs(shards []WordCountOutput, topN int) WordCountOutput {
	out := WordCountOutput{}
	counts := make(map[string]int)
	for _, s := range shards {
		out.TotalWords += s.TotalWords
		out.Fragments += s.Fragments
		out.ElapsedMs += s.ElapsedMs
		for _, wf := range s.Top {
			counts[wf.Word] += wf.Count
		}
	}
	out.UniqueWords = len(counts)
	for _, p := range workloads.TopWords(counts, topN) {
		out.Top = append(out.Top, WordFreq{Word: p.Key, Count: p.Value})
	}
	return out
}
