package core

import (
	"bufio"
	"context"
	"fmt"
	"time"

	"mcsd/internal/partition"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

// ModuleDBSelect is the database-operation module of the paper's §VI
// extensibility direction: a selection + group-by aggregation executed on
// the storage node, returning only the aggregate.
const ModuleDBSelect = "dbselect"

// DBSelectParams parametrizes the dbselect module.
type DBSelectParams struct {
	DataFile string `json:"data_file"`
	// GroupBy is "region" or "product".
	GroupBy string `json:"group_by"`
	// MinPrice filters rows (0 keeps everything).
	MinPrice       float64 `json:"min_price,omitempty"`
	PartitionBytes int64   `json:"partition_bytes,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	// Sequential opts out of the default fragment-parallel driver.
	Sequential bool `json:"sequential,omitempty"`
	// Pipelined is accepted for backward compatibility; it has no effect
	// now that concurrent fragment processing is the default.
	Pipelined bool `json:"pipelined,omitempty"`
}

// DBSelectOutput is the dbselect module's result.
type DBSelectOutput struct {
	// Revenue maps each group to its summed quantity*price.
	Revenue   map[string]float64 `json:"revenue"`
	Groups    int                `json:"groups"`
	Fragments int                `json:"fragments"`
	ElapsedMs int64              `json:"elapsed_ms"`
}

// DBSelectModule returns the dbselect data-intensive module.
func DBSelectModule(cfg ModuleConfig) smartfam.Module {
	return smartfam.ModuleFunc{
		ModuleName: ModuleDBSelect,
		Fn: func(ctx context.Context, raw []byte) ([]byte, error) {
			var p DBSelectParams
			if err := Decode(raw, &p); err != nil {
				return nil, err
			}
			if p.DataFile == "" {
				return nil, fmt.Errorf("core: dbselect requires data_file")
			}
			q := workloads.DBQuery{GroupBy: p.GroupBy, MinPrice: p.MinPrice}
			if err := q.Validate(); err != nil {
				return nil, err
			}
			f, err := cfg.Store.Open(p.DataFile)
			if err != nil {
				return nil, err
			}
			defer f.Close()

			start := time.Now()
			driver := partition.RunParallel[string, float64, float64]
			if p.Sequential {
				driver = partition.Run[string, float64, float64]
			}
			res, err := driver(ctx, cfg.mrConfig(cfg.workers(p.Workers)),
				workloads.DBSelectSpec(q), bufio.NewReaderSize(f, 1<<20),
				partition.Options{FragmentSize: cfg.partitionBytes(p.PartitionBytes, 1.5), Delimiters: []byte{'\n'}},
				workloads.DBSelectMerge)
			if err != nil {
				return nil, err
			}
			out := DBSelectOutput{
				Revenue:   make(map[string]float64, len(res.Pairs)),
				Groups:    len(res.Pairs),
				Fragments: res.Fragments,
				ElapsedMs: time.Since(start).Milliseconds(),
			}
			for _, pr := range res.Pairs {
				out.Revenue[pr.Key] = pr.Value
			}
			return encode(out)
		},
	}
}
