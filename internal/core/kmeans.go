package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

// ModuleKMeans clusters a file of encoded points on the storage node via
// iterated MapReduce (workloads.KMeansPartitioned): the data streams from
// the SD node's disk every round and only k centroids ever cross the wire.
const ModuleKMeans = "kmeans"

// KMeansParams parametrizes the kmeans module. DataFile holds little-
// endian float64 records, Dim values per point (datagen -kind points).
type KMeansParams struct {
	DataFile string `json:"data_file"`
	Dim      int    `json:"dim"`
	K        int    `json:"k"`
	// MaxRounds bounds the iteration (0 = 50).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Tol is the convergence threshold on centroid movement (0 = 1e-6).
	Tol float64 `json:"tol,omitempty"`
	// PartitionBytes streams each round in fragments; 0 = native,
	// AutoPartition picks from the node's memory model.
	PartitionBytes int64 `json:"partition_bytes,omitempty"`
	Workers        int   `json:"workers,omitempty"`
}

// KMeansOutput is the kmeans module's result.
type KMeansOutput struct {
	Centroids [][]float64 `json:"centroids"`
	Rounds    int         `json:"rounds"`
	Converged bool        `json:"converged"`
	LastShift float64     `json:"last_shift"`
	ElapsedMs int64       `json:"elapsed_ms"`
}

// KMeansModule returns the kmeans data-intensive module.
func KMeansModule(cfg ModuleConfig) smartfam.Module {
	return smartfam.ModuleFunc{
		ModuleName: ModuleKMeans,
		Fn: func(ctx context.Context, raw []byte) ([]byte, error) {
			var p KMeansParams
			if err := Decode(raw, &p); err != nil {
				return nil, err
			}
			if p.DataFile == "" {
				return nil, fmt.Errorf("core: kmeans requires data_file")
			}
			if p.Dim <= 0 || p.K <= 0 {
				return nil, fmt.Errorf("core: kmeans requires dim > 0 and k > 0")
			}
			maxRounds := p.MaxRounds
			if maxRounds <= 0 {
				maxRounds = 50
			}
			open := func() (io.ReadCloser, error) { return cfg.Store.Open(p.DataFile) }
			start := time.Now()
			res, err := workloads.KMeansPartitioned(ctx,
				cfg.mrConfig(cfg.workers(p.Workers)), open,
				p.Dim, p.K, maxRounds, p.Tol,
				cfg.partitionBytes(p.PartitionBytes, 1.2))
			if err != nil {
				return nil, err
			}
			out := KMeansOutput{
				Rounds:    res.Rounds,
				Converged: res.Converged,
				LastShift: res.LastShift,
				ElapsedMs: time.Since(start).Milliseconds(),
			}
			for _, c := range res.Centroids {
				out.Centroids = append(out.Centroids, []float64(c))
			}
			return encode(out)
		},
	}
}

// KMeans is the typed wrapper for the kmeans module.
func (r *Runtime) KMeans(ctx context.Context, p KMeansParams) (*KMeansOutput, *Result, error) {
	res, err := r.Invoke(ctx, ModuleKMeans, p)
	if err != nil {
		return nil, nil, err
	}
	var out KMeansOutput
	if err := Decode(res.Payload, &out); err != nil {
		return nil, res, err
	}
	return &out, res, nil
}
