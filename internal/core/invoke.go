package core

import "context"

// Typed wrappers over Runtime.Invoke for the standard modules: each
// dispatches the module, decodes its output, and returns the job Result
// for placement/attempt metadata.

// WordCount offloads a word count and decodes the frequency table.
func (r *Runtime) WordCount(ctx context.Context, p WordCountParams) (*WordCountOutput, *Result, error) {
	res, err := r.Invoke(ctx, ModuleWordCount, p)
	if err != nil {
		return nil, nil, err
	}
	var out WordCountOutput
	if err := Decode(res.Payload, &out); err != nil {
		return nil, res, err
	}
	return &out, res, nil
}

// StringMatch offloads a string match and decodes the hit counts.
func (r *Runtime) StringMatch(ctx context.Context, p StringMatchParams) (*StringMatchOutput, *Result, error) {
	res, err := r.Invoke(ctx, ModuleStringMatch, p)
	if err != nil {
		return nil, nil, err
	}
	var out StringMatchOutput
	if err := Decode(res.Payload, &out); err != nil {
		return nil, res, err
	}
	return &out, res, nil
}

// MatMul offloads a matrix multiplication and decodes its checksums.
func (r *Runtime) MatMul(ctx context.Context, p MatMulParams) (*MatMulOutput, *Result, error) {
	res, err := r.Invoke(ctx, ModuleMatMul, p)
	if err != nil {
		return nil, nil, err
	}
	var out MatMulOutput
	if err := Decode(res.Payload, &out); err != nil {
		return nil, res, err
	}
	return &out, res, nil
}

// DBSelect offloads a selection/aggregation and decodes the aggregate.
func (r *Runtime) DBSelect(ctx context.Context, p DBSelectParams) (*DBSelectOutput, *Result, error) {
	res, err := r.Invoke(ctx, ModuleDBSelect, p)
	if err != nil {
		return nil, nil, err
	}
	var out DBSelectOutput
	if err := Decode(res.Payload, &out); err != nil {
		return nil, res, err
	}
	return &out, res, nil
}
