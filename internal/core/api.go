package core

import (
	"encoding/json"
	"fmt"
)

// Standard module names preloaded on every McSD node.
const (
	ModuleWordCount   = "wordcount"
	ModuleStringMatch = "stringmatch"
	ModuleMatMul      = "matmul"
)

// WordCountParams parametrizes the wordcount module: the paper's
// "wordcount [data-file] [partition-size]" command line (§IV-C).
type WordCountParams struct {
	// DataFile is the input path on the SD node's data store.
	DataFile string `json:"data_file"`
	// PartitionBytes is the fragment size; 0 runs in the native way;
	// AutoPartition (-1) lets the node pick from its memory model (§IV-C's
	// "automatically determined by the runtime system").
	PartitionBytes int64 `json:"partition_bytes,omitempty"`
	// Workers overrides the module's worker count (0 = node default).
	Workers int `json:"workers,omitempty"`
	// TopN bounds the returned frequency table (0 = 100).
	TopN int `json:"top_n,omitempty"`
	// Sequential opts out of the default fragment-parallel driver
	// (partition.RunParallel) and processes fragments strictly one at a
	// time — the choice when the node's memory budget cannot spare the
	// pool's extra resident fragments and in-flight fragment outputs.
	Sequential bool `json:"sequential,omitempty"`
	// Pipelined is accepted for backward compatibility; concurrent
	// fragment processing is now the default, so the field has no effect.
	Pipelined bool `json:"pipelined,omitempty"`
	// RangeOffset/RangeBytes restrict the run to the word-aligned view of
	// the byte range [RangeOffset, RangeOffset+RangeBytes) of DataFile —
	// the fleet's scatter unit. RangeBytes <= 0 means the whole file.
	// Alignment follows partition.RangeReader: a record belongs to the
	// range containing its first byte, so adjacent ranges count every word
	// exactly once.
	RangeOffset int64 `json:"range_offset,omitempty"`
	RangeBytes  int64 `json:"range_bytes,omitempty"`
	// EmitPairs asks for the complete sorted (word, count) run in the
	// output — what a fleet coordinator needs to merge per-fragment
	// results deterministically — instead of only the TopN summary.
	EmitPairs bool `json:"emit_pairs,omitempty"`
	// Sealed marks DataFile as a sealed fragment object (payload + CRC32
	// trailer, smartfam.SealBlob): the module reads it through a verifying
	// SealedStore and fails with smartfam.ErrCorruptBlob — relayed over
	// the wire as a recognizable ModuleError — instead of silently
	// counting corrupt bytes. Sealed objects are whole fragments, so
	// Sealed excludes RangeOffset/RangeBytes.
	Sealed bool `json:"sealed,omitempty"`
}

// WordFreq is one row of the word-count output.
type WordFreq struct {
	Word  string `json:"word"`
	Count int    `json:"count"`
}

// WordCountOutput is the wordcount module's result.
type WordCountOutput struct {
	TotalWords  int64      `json:"total_words"`
	UniqueWords int        `json:"unique_words"`
	Top         []WordFreq `json:"top"`
	Fragments   int        `json:"fragments"`
	// FragmentKeys is the per-fragment unique-word sum; the gap to
	// UniqueWords is the dedup work the fragment merge stage did.
	FragmentKeys int   `json:"fragment_keys,omitempty"`
	ElapsedMs    int64 `json:"elapsed_ms"`
	// ShuffleMs and MergeMs break the engine time down: the summed
	// reduce-task shuffle time and the final-merge wall time across
	// fragments (see mapreduce.Stats).
	ShuffleMs int64 `json:"shuffle_ms,omitempty"`
	MergeMs   int64 `json:"merge_ms,omitempty"`
	// Pairs is the complete key-sorted (word, count) run, present only
	// when the request set EmitPairs.
	Pairs []WordFreq `json:"pairs,omitempty"`
}

// StringMatchParams parametrizes the stringmatch module: the "encrypt"
// file scanned for the target strings of a "keys" file (§V-A).
type StringMatchParams struct {
	DataFile       string `json:"data_file"`
	KeysFile       string `json:"keys_file"`
	PartitionBytes int64  `json:"partition_bytes,omitempty"`
	Workers        int    `json:"workers,omitempty"`
	// SampleLines bounds how many matching lines are returned verbatim
	// (counts are always complete). 0 = 10.
	SampleLines int `json:"sample_lines,omitempty"`
	// Sequential opts out of the default fragment-parallel driver.
	Sequential bool `json:"sequential,omitempty"`
	// Pipelined is accepted for backward compatibility; it has no effect
	// now that concurrent fragment processing is the default.
	Pipelined bool `json:"pipelined,omitempty"`
}

// StringMatchOutput is the stringmatch module's result.
type StringMatchOutput struct {
	HitsPerKey map[string]int `json:"hits_per_key"`
	TotalHits  int64          `json:"total_hits"`
	Sample     []string       `json:"sample"`
	Fragments  int            `json:"fragments"`
	ElapsedMs  int64          `json:"elapsed_ms"`
}

// MatMulParams parametrizes the matmul module. Matrices are generated
// deterministically from the seeds on the executing node, so only the
// description crosses the wire.
type MatMulParams struct {
	N       int   `json:"n"`
	SeedA   int64 `json:"seed_a"`
	SeedB   int64 `json:"seed_b"`
	Workers int   `json:"workers,omitempty"`
}

// MatMulOutput is the matmul module's result: a content checksum (the
// trace and Frobenius-norm square) rather than the full product.
type MatMulOutput struct {
	N         int     `json:"n"`
	Trace     float64 `json:"trace"`
	FrobSq    float64 `json:"frob_sq"`
	ElapsedMs int64   `json:"elapsed_ms"`
}

// encode marshals module parameters or results.
func encode(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("core: encoding %T: %w", v, err)
	}
	return b, nil
}

// Decode unmarshals a module result payload into out.
func Decode(payload []byte, out any) error {
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("core: decoding %T: %w", out, err)
	}
	return nil
}
