# Standard development entry points. `make check` is what CI (and the
# pre-commit habit) should run: vet, lint, build, full test suite under the
# race detector, and a short-mode smoke of the engine benchmarks. `lint`
# runs mcsdlint, the repo's own analyzer suite (internal/lint): share-I/O
# discipline, wire-error wrapping, context propagation, metric-name
# registry, and sim determinism — see DESIGN.md §5d for the invariants.

GO ?= go

.PHONY: all vet lint lint-new build test race bench-smoke bench-json bench-nfs bench-cluster bench-fam bench-compare chaos chaos-heal check

all: check

vet:
	$(GO) vet ./...

# lint runs the mcsdlint analyzer suite over the whole module. Zero
# diagnostics is the merge bar; suppressions need a stated reason
# (//mcsdlint:allow ... -- why) and are themselves linted — including
# allows whose analyzer runs but no longer suppresses anything.
lint:
	$(GO) run ./cmd/mcsdlint

# lint-new runs just the concurrency-safety analyzers (DESIGN.md §5i) —
# goroutine lifecycle, lock discipline, channel bounds — plus their
# fixture tests, for a fast signal while working on concurrent code.
lint-new:
	$(GO) run ./cmd/mcsdlint -run 'goroleak|lockhold|chanbound'
	$(GO) test -run 'TestGoRoLeak|TestLockHold|TestChanBound|TestAllowHygiene' ./internal/lint/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs every benchmark for a single iteration in short mode —
# it catches bit-rotted benchmark code without paying for real measurement.
bench-smoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

# chaos runs the crash/restart fault-injection test (DESIGN.md §5c)
# repeatedly and under the race detector: a daemon is killed mid-batch
# under torn-write and transient-error injection and must deliver exactly
# one response per request after restart.
chaos:
	$(GO) test -run TestChaos -count=10 -v .
	$(GO) test -race -run TestChaos -count=3 .

# chaos-heal runs the replication/self-healing chaos test (DESIGN.md §5h)
# repeatedly and under the race detector: one SD daemon is killed mid-job
# while another node's replica of a victim-held object carries an at-rest
# bit flip. The word count must stay byte-identical to a single-node run,
# the killed node must rejoin through the probe/probation path, and a scrub
# afterwards must restore full replication (second pass: zero repairs).
chaos-heal:
	$(GO) test -run TestChaosHeal -count=10 -v .
	$(GO) test -race -run TestChaosHeal -count=3 .

# bench-json regenerates BENCH_mapreduce.json: the engine hot-path numbers
# across the GOMAXPROCS sweep (zero-copy streaming combine vs staged emit,
# the k-adaptive merge vs its forced strategies, parallel vs sequential
# partition driver) plus the acceptance targets vs the pre-overhaul
# baseline. Commit the regenerated file; bench-compare gates against it.
bench-json:
	$(GO) run ./cmd/mcsd-bench -engine -engine-out BENCH_mapreduce.json

# bench-compare is the engine-performance regression gate: re-measure the
# engine hot paths on this machine and compare against the committed
# BENCH_mapreduce.json, failing on >10% throughput loss (ns/op rise for
# rows without a MB/s figure) or >20% allocs/op growth per matched
# (benchmark, gomaxprocs) row. Improvements never fail; regenerate the
# committed file with bench-json when numbers legitimately move.
bench-compare:
	$(GO) run ./cmd/mcsd-bench -engine -engine-out /tmp/bench-new.json
	$(GO) run ./cmd/mcsd-bench -compare BENCH_mapreduce.json /tmp/bench-new.json

# bench-nfs regenerates BENCH_nfs.json: the NFS data-path numbers over a
# modelled 1 GbE link with propagation delay — pipelined vs serial
# sequential read, random reads, staged vs per-RPC append, and the block
# cache's warm/cold split. The run fails if the acceptance gates regress
# (pipelined >= 2x serial; warm cache reads move zero data bytes).
bench-nfs:
	$(GO) run ./cmd/mcsd-bench -nfs -nfs-out BENCH_nfs.json

# bench-cluster regenerates BENCH_cluster.json: the multi-SD scale-out
# numbers — a fleet word count scattered over N=1/2/4/8 in-process SD nodes,
# each reading through a bandwidth-limited self-mount standing in for its
# local disk, gathered and merged by the host over a modelled 1 GbE link.
# The run fails if the near-linear-speedup gates regress (>= 1.7x at N=2,
# >= 3.0x at N=4) or if any merged output differs from the N=1 bytes.
bench-cluster:
	$(GO) run ./cmd/mcsd-bench -cluster -cluster-out BENCH_cluster.json

# bench-fam regenerates BENCH_fam.json: the fam v2 invocation front-door
# numbers — the same concurrent echo invocations over the same modelled
# 1 GbE + 10 ms link, once through the classic append-then-poll path and
# once through push notify + group commit. The run fails if the acceptance
# gates regress (push >= 10x polling throughput; push p99 <= 3x the 20 ms
# RTT).
bench-fam:
	$(GO) run ./cmd/mcsd-bench -fam -fam-out BENCH_fam.json

check: vet lint build race bench-smoke
