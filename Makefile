# Standard development entry points. `make check` is what CI (and the
# pre-commit habit) should run: vet, build, full test suite under the race
# detector, and a short-mode smoke of the engine benchmarks.

GO ?= go

.PHONY: all vet build test race bench-smoke bench-json chaos check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs every benchmark for a single iteration in short mode —
# it catches bit-rotted benchmark code without paying for real measurement.
bench-smoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

# chaos runs the crash/restart fault-injection test (DESIGN.md §5c)
# repeatedly and under the race detector: a daemon is killed mid-batch
# under torn-write and transient-error injection and must deliver exactly
# one response per request after restart.
chaos:
	$(GO) test -run TestChaos -count=10 -v .
	$(GO) test -race -run TestChaos -count=3 .

# bench-json regenerates BENCH_mapreduce.json: the before/after numbers
# for the shuffle/merge hot path (streaming combine vs staged emit,
# heap k-way merge vs linear tournament, pipelined vs sequential driver).
bench-json:
	$(GO) run ./cmd/mcsd-bench -engine -engine-out BENCH_mapreduce.json

check: vet build race bench-smoke
