// Dbselect-query: database operations on smart storage.
//
// The paper's future-work section (§VI) calls for extending McSD's
// preloaded modules to "database operations" — the decision-support
// workloads the whole smart-disk lineage (SmartSTOR, active disks, IDISK)
// was built for. This demo stages a sales table on the SD node and runs
//
//	SELECT region,  SUM(quantity*price) WHERE price >= 200 GROUP BY region
//	SELECT product, SUM(quantity*price)                    GROUP BY product
//
// at the storage: the table never crosses the wire, only the few-hundred-
// byte aggregate does. The host-side equivalent is computed for comparison
// and verification.
//
// Run with:
//
//	go run ./examples/dbselect-query
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/smartfam"
	"mcsd/internal/units"
	"mcsd/internal/workloads"
)

const tableSize = 8 << 20 // 8 MiB of CSV rows

func main() {
	if err := run(); err != nil {
		log.Fatalf("dbselect-query: %v", err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// SD node holding the sales table.
	dir, err := os.MkdirTemp("", "mcsd-db-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	share := smartfam.DirFS(dir)
	reg := smartfam.NewRegistry(share)
	for _, m := range core.StandardModules(core.ModuleConfig{Store: core.DirStore(dir), Workers: 2}) {
		if err := reg.Register(m); err != nil {
			return err
		}
	}
	daemon := smartfam.NewDaemon(share, reg, smartfam.WithWorkers(2))
	go daemon.Run(ctx) //nolint:errcheck

	table := workloads.GenerateSalesBytes(tableSize, 2026)
	if err := os.WriteFile(filepath.Join(dir, "sales.csv"), table, 0o644); err != nil {
		return err
	}
	fmt.Printf("SD node holds a %s sales table (%d rows)\n\n",
		units.FormatBytes(int64(len(table))), countRows(table))

	rt := core.New()
	rt.AttachSD("sd0", share)

	queries := []core.DBSelectParams{
		{DataFile: "sales.csv", GroupBy: "region", MinPrice: 200, PartitionBytes: 1 << 20},
		{DataFile: "sales.csv", GroupBy: "product", PartitionBytes: 1 << 20},
	}
	for _, q := range queries {
		where := ""
		if q.MinPrice > 0 {
			where = fmt.Sprintf(" WHERE price >= %.0f", q.MinPrice)
		}
		fmt.Printf("SELECT %s, SUM(quantity*price)%s GROUP BY %s\n", q.GroupBy, where, q.GroupBy)

		start := time.Now()
		res, err := rt.Invoke(ctx, core.ModuleDBSelect, q)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		var out core.DBSelectOutput
		if err := core.Decode(res.Payload, &out); err != nil {
			return err
		}

		// Verify against the host-side sequential scan.
		want, err := workloads.DBSelectSeq(table, workloads.DBQuery{GroupBy: q.GroupBy, MinPrice: q.MinPrice})
		if err != nil {
			return err
		}
		for g, v := range want {
			diff := out.Revenue[g] - v
			if diff > 1e-6*v || diff < -1e-6*v {
				return fmt.Errorf("verification failed for group %s: %v vs %v", g, out.Revenue[g], v)
			}
		}

		groups := make([]string, 0, len(out.Revenue))
		for g := range out.Revenue {
			groups = append(groups, g)
		}
		sort.Slice(groups, func(i, j int) bool { return out.Revenue[groups[i]] > out.Revenue[groups[j]] })
		for _, g := range groups {
			fmt.Printf("%14.2f  %s\n", out.Revenue[g], g)
		}
		fmt.Printf("-> %d fragments on the SD node, %v total; result payload %s vs %s of table\n\n",
			out.Fragments, elapsed.Round(time.Millisecond),
			units.FormatBytes(int64(len(res.Payload))), units.FormatBytes(int64(len(table))))
	}
	return nil
}

func countRows(table []byte) int {
	rows := 0
	for _, b := range table {
		if b == '\n' {
			rows++
		}
	}
	return rows
}
