// Wordcount-offload: the paper's core experiment on a real wire.
//
// Two "nodes" run in one process but talk only through TCP on a
// bandwidth-throttled loopback link modelling the testbed's Gigabit
// Ethernet: an SD node (file-service export + smartFAM daemon + preloaded
// modules, the mcsdd role) and a host. The host stages a corpus onto the
// SD node once, then counts its words two ways:
//
//  1. McSD offload — only parameters and the small result cross the wire;
//  2. host-only — the host drags every byte back over NFS and counts
//     locally, the data movement smart storage exists to avoid.
//
// Run with:
//
//	go run ./examples/wordcount-offload
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/mapreduce"
	"mcsd/internal/netsim"
	"mcsd/internal/nfs"
	"mcsd/internal/partition"
	"mcsd/internal/smartfam"
	"mcsd/internal/units"
	"mcsd/internal/workloads"
)

const corpusSize = 8 << 20 // 8 MiB keeps the demo quick on a slow link

func main() {
	if err := run(); err != nil {
		log.Fatalf("wordcount-offload: %v", err)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// --- SD node: export a directory and serve modules over smartFAM.
	sdDir, err := os.MkdirTemp("", "mcsd-sd-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(sdDir)

	share := smartfam.DirFS(sdDir)
	registry := smartfam.NewRegistry(share)
	for _, m := range core.StandardModules(core.ModuleConfig{Store: core.DirStore(sdDir), Workers: 2}) {
		if err := registry.Register(m); err != nil {
			return err
		}
	}
	daemon := smartfam.NewDaemon(share, registry, smartfam.WithWorkers(2))
	go daemon.Run(ctx) //nolint:errcheck

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	server := nfs.NewServer(sdDir)
	go server.Serve(ln) //nolint:errcheck
	defer server.Shutdown()
	fmt.Printf("SD node exporting %s on %s\n", sdDir, ln.Addr())

	// --- The wire: a 25 MB/s link (a scaled-down 1 GbE so the demo's
	// 8 MiB behaves like the paper's gigabytes).
	link := netsim.NewLink(netsim.Profile{
		Name: "demo-link", BandwidthBps: 25e6, Latency: 100 * time.Microsecond,
	})

	// --- Host: mount the export over the throttled link.
	mount, err := nfs.DialThrottled(ctx, ln.Addr().String(), 5*time.Second, link)
	if err != nil {
		return err
	}
	defer mount.Close()

	// Stage the corpus onto the SD node (one-time data placement).
	fmt.Printf("staging a %s corpus onto the SD node...\n", units.FormatBytes(corpusSize))
	corpus := workloads.GenerateTextBytes(corpusSize, 7)
	start := time.Now()
	if err := mount.WriteFile("corpus.txt", corpus); err != nil {
		return err
	}
	fmt.Printf("staged in %v\n\n", time.Since(start).Round(time.Millisecond))

	// --- Way 1: McSD offload. Parameters go out, a frequency table comes
	// back; the corpus itself never crosses the wire again.
	rt := core.New()
	rt.AttachSD("sd0", mount)
	start = time.Now()
	res, err := rt.Invoke(ctx, core.ModuleWordCount, core.WordCountParams{
		DataFile: "corpus.txt", PartitionBytes: 1 << 20, TopN: 5,
	})
	if err != nil {
		return err
	}
	offloadTime := time.Since(start)
	var out core.WordCountOutput
	if err := core.Decode(res.Payload, &out); err != nil {
		return err
	}
	fmt.Printf("McSD offload:  %8v   (%d unique words, computed on %s)\n",
		offloadTime.Round(time.Millisecond), out.UniqueWords, res.SD)

	// --- Way 2: host-only. Every corpus byte crosses the throttled link
	// before the host can count anything.
	start = time.Now()
	reader, err := mount.OpenReader("corpus.txt")
	if err != nil {
		return err
	}
	hostRes, err := partition.Run(ctx, mapreduce.Config{Workers: 4},
		workloads.WordCountSpec(), bufio.NewReaderSize(reader, 1<<20),
		partition.Options{FragmentSize: 1 << 20}, workloads.WordCountMerge)
	reader.Close()
	if err != nil {
		return err
	}
	hostTime := time.Since(start)
	fmt.Printf("host-only:     %8v   (%d unique words, %s pulled across the wire)\n",
		hostTime.Round(time.Millisecond), len(hostRes.Pairs), units.FormatBytes(corpusSize))

	if len(hostRes.Pairs) != out.UniqueWords {
		return fmt.Errorf("results disagree: %d vs %d unique words", len(hostRes.Pairs), out.UniqueWords)
	}
	fmt.Printf("\nidentical results; offload avoided the bulk transfer (%.1fx faster here)\n",
		float64(hostTime)/float64(offloadTime))
	fmt.Println("top words:")
	for _, wf := range out.Top {
		fmt.Printf("%8d  %s\n", wf.Count, wf.Word)
	}
	return nil
}
