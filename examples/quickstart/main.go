// Quickstart: the smallest possible McSD program.
//
// It assembles a single-process McSD deployment — a smart-storage node
// (module registry + smartFAM daemon over a shared folder) and a host-side
// runtime — generates a small text corpus on the "SD node", and offloads a
// word count to it through the public core API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("quickstart: %v", err)
	}
}

func run() error {
	// --- SD node side -----------------------------------------------------
	// A smart-storage node is a directory (its disk) plus a smartFAM
	// daemon serving the preloaded data-intensive modules.
	sdDir, err := os.MkdirTemp("", "mcsd-quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(sdDir)

	share := smartfam.DirFS(sdDir)
	registry := smartfam.NewRegistry(share)
	modules := core.StandardModules(core.ModuleConfig{
		Store:   core.DirStore(sdDir),
		Workers: 2, // the duo-core SD node of the paper
	})
	for _, m := range modules {
		if err := registry.Register(m); err != nil {
			return err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	daemon := smartfam.NewDaemon(share, registry, smartfam.WithWorkers(2))
	go daemon.Run(ctx) //nolint:errcheck // stops with ctx

	// The SD node holds the data — that is the whole point: the bulk
	// bytes never leave it.
	corpus := filepath.Join(sdDir, "corpus.txt")
	f, err := os.Create(corpus)
	if err != nil {
		return err
	}
	if _, err := workloads.GenerateText(f, 2<<20, 42); err != nil {
		f.Close()
		return err
	}
	f.Close()
	fmt.Println("SD node ready with a 2 MiB corpus and modules:", registry.Names())

	// --- Host side ---------------------------------------------------------
	// The host attaches the SD node and writes MapReduce-like code; the
	// runtime offloads the data-intensive part automatically.
	rt := core.New()
	rt.AttachSD("sd0", share)

	jobCtx, jobCancel := context.WithTimeout(ctx, time.Minute)
	defer jobCancel()
	out, res, err := rt.WordCount(jobCtx, core.WordCountParams{
		DataFile:       "corpus.txt",
		PartitionBytes: 256 << 10, // out-of-core in 256 KiB fragments
		TopN:           10,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\noffloaded to %q in %v (module compute: %dms, %d fragments)\n",
		res.SD, res.Elapsed.Round(time.Millisecond), out.ElapsedMs, out.Fragments)
	fmt.Printf("counted %d words, %d unique; top 10:\n", out.TotalWords, out.UniqueWords)
	for _, wf := range out.Top {
		fmt.Printf("%8d  %s\n", wf.Count, wf.Word)
	}
	return nil
}
