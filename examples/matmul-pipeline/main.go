// Matmul-pipeline: the paper's multiple-application experiment (§V-C) in
// miniature.
//
// A host node owns a computation-intensive matrix multiplication; an SD
// node owns the data for a data-intensive word count. Under the McSD
// framework the two run concurrently — the host computes while the storage
// node counts — which is exactly the load balancing the framework promises.
// The demo times the overlapped execution against running the two halves
// back-to-back on the host.
//
// Run with:
//
//	go run ./examples/matmul-pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/smartfam"
	"mcsd/internal/trace"
	"mcsd/internal/workloads"
)

const (
	matrixN    = 420     // host-side computation-intensive work
	corpusSize = 6 << 20 // SD-side data-intensive work
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("matmul-pipeline: %v", err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// SD node with the corpus.
	sdDir, err := os.MkdirTemp("", "mcsd-pipeline-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(sdDir)
	share := smartfam.DirFS(sdDir)
	registry := smartfam.NewRegistry(share)
	for _, m := range core.StandardModules(core.ModuleConfig{Store: core.DirStore(sdDir), Workers: 2}) {
		if err := registry.Register(m); err != nil {
			return err
		}
	}
	daemon := smartfam.NewDaemon(share, registry, smartfam.WithWorkers(2))
	go daemon.Run(ctx) //nolint:errcheck
	if err := os.WriteFile(filepath.Join(sdDir, "corpus.txt"),
		workloads.GenerateTextBytes(corpusSize, 5), 0o644); err != nil {
		return err
	}

	// The host's computation-intensive half: an NxN matrix product.
	a := workloads.RandomMatrix(matrixN, matrixN, 1)
	b := workloads.RandomMatrix(matrixN, matrixN, 2)
	var product *workloads.Matrix
	hostWork := func(context.Context) error {
		var err error
		product, err = workloads.MatMulSeq(a, b)
		return err
	}

	tracer := trace.New()
	rt := core.New(core.WithTracer(tracer))
	rt.AttachSD("sd0", share)
	wcParams := core.WordCountParams{DataFile: "corpus.txt", PartitionBytes: 1 << 20, TopN: 3}

	// --- Serial baseline: matmul, then the offloaded word count.
	start := time.Now()
	if err := hostWork(ctx); err != nil {
		return err
	}
	serialMM := time.Since(start)
	res, err := rt.Invoke(ctx, core.ModuleWordCount, wcParams)
	if err != nil {
		return err
	}
	serial := time.Since(start)
	fmt.Printf("serial:     matmul %v then wordcount -> total %v\n",
		serialMM.Round(time.Millisecond), serial.Round(time.Millisecond))

	// --- McSD framework: one Job with a Local (host) half; the runtime
	// overlaps them.
	start = time.Now()
	res, err = rt.Run(ctx, core.Job{
		Module: core.ModuleWordCount,
		Params: wcParams,
		Local:  hostWork,
	})
	if err != nil {
		return err
	}
	overlapped := time.Since(start)
	var out core.WordCountOutput
	if err := core.Decode(res.Payload, &out); err != nil {
		return err
	}

	fmt.Printf("overlapped: matmul and wordcount together -> total %v\n",
		overlapped.Round(time.Millisecond))
	fmt.Printf("\nMcSD load balancing bought %.2fx over back-to-back execution\n",
		float64(serial)/float64(overlapped))
	fmt.Println("(the gain approaches the 2x of the paper when host and SD are separate")
	fmt.Println(" machines; in this single-process demo both halves share the same CPUs)")
	fmt.Printf("matmul: %dx%d product, trace %.4f; wordcount: %d unique words via %s\n",
		matrixN, matrixN, matrixTrace(product), out.UniqueWords, res.SD)
	for _, wf := range out.Top {
		fmt.Printf("%8d  %s\n", wf.Count, wf.Word)
	}

	// The span timeline makes the overlap visible: host-local and offload
	// bars run side by side under the overlapped job.
	fmt.Println("\njob timeline:")
	if err := trace.Render(os.Stdout, tracer.Roots(), 48); err != nil {
		return err
	}
	return nil
}

func matrixTrace(m *workloads.Matrix) float64 {
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}
