// Stringmatch-cluster: out-of-core string match sharded across two SD
// nodes.
//
// The demo shows the two McSD properties the paper's §IV-B and §VI care
// about:
//
//  1. the memory wall — each SD node is given a deliberately tiny memory
//     budget, so the native (no-partition) run fails with the same
//     out-of-memory error that kills original Phoenix, while the
//     partitioned run streams through fragment by fragment;
//  2. multi-SD parallelism — the encrypt file is split across two SD
//     nodes and both shards are searched concurrently via RunSharded.
//
// Run with:
//
//	go run ./examples/stringmatch-cluster
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/memsim"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

const shardSize = 3 << 20 // per-SD encrypt shard

func main() {
	if err := run(); err != nil {
		log.Fatalf("stringmatch-cluster: %v", err)
	}
}

// startSD builds one memory-constrained smart-storage node and returns its
// share and data dir.
func startSD(ctx context.Context, name string) (smartfam.FS, string, error) {
	dir, err := os.MkdirTemp("", "mcsd-"+name+"-*")
	if err != nil {
		return nil, "", err
	}
	share := smartfam.DirFS(dir)
	registry := smartfam.NewRegistry(share)
	// A tiny memory budget: 4 MiB RAM, no swap. A 3 MiB shard has a
	// 6 MiB string-match footprint -> native runs must OOM.
	acct := memsim.NewAccountant(memsim.Config{CapacityBytes: 4 << 20, UsableFraction: 1.0})
	mods := core.StandardModules(core.ModuleConfig{
		Store: core.DirStore(dir), Workers: 2, Memory: acct,
	})
	for _, m := range mods {
		if err := registry.Register(m); err != nil {
			return nil, "", err
		}
	}
	daemon := smartfam.NewDaemon(share, registry, smartfam.WithWorkers(2))
	go daemon.Run(ctx) //nolint:errcheck
	return share, dir, nil
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	keys := workloads.GenerateKeys(8, 99)

	rt := core.New()
	var dirs []string
	for i, name := range []string{"sd0", "sd1"} {
		share, dir, err := startSD(ctx, name)
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		dirs = append(dirs, dir)

		// Stage this node's shard of the encrypt file plus the keys file.
		shard := workloads.GenerateEncryptBytes(shardSize, int64(100+i), keys, 0.05)
		if err := os.WriteFile(filepath.Join(dir, "encrypt.txt"), shard, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "keys.txt"),
			[]byte(strings.Join(keys, "\n")+"\n"), 0o644); err != nil {
			return err
		}
		rt.AttachSD(name, share)
	}
	fmt.Printf("two SD nodes up, %d MiB shard each, searching for %d keys\n\n",
		shardSize>>20, len(keys))

	// --- The memory wall: native mode cannot even start.
	_, err := rt.Invoke(ctx, core.ModuleStringMatch, core.StringMatchParams{
		DataFile: "encrypt.txt", KeysFile: "keys.txt", // PartitionBytes 0 = native
	})
	var merr *smartfam.ModuleError
	if !errors.As(err, &merr) || !strings.Contains(merr.Msg, "out of memory") {
		return fmt.Errorf("expected the native run to hit the memory wall, got: %v", err)
	}
	fmt.Println("native (no partition):  OUT OF MEMORY — the original-Phoenix wall")

	// --- Partitioned + sharded: both nodes stream their shard in 512 KiB
	// fragments concurrently.
	params := []any{
		core.StringMatchParams{DataFile: "encrypt.txt", KeysFile: "keys.txt", PartitionBytes: 512 << 10},
		core.StringMatchParams{DataFile: "encrypt.txt", KeysFile: "keys.txt", PartitionBytes: 512 << 10},
	}
	start := time.Now()
	shards := rt.RunSharded(ctx, core.ModuleStringMatch, params)
	elapsed := time.Since(start)

	var outs []core.StringMatchOutput
	for i, sr := range shards {
		if sr.Err != nil {
			return fmt.Errorf("shard %d: %w", i, sr.Err)
		}
		var out core.StringMatchOutput
		if err := core.Decode(sr.Payload, &out); err != nil {
			return err
		}
		fmt.Printf("shard %d on %-4s: %5d hits in %d fragments (%dms)\n",
			i, sr.Result.SD, out.TotalHits, out.Fragments, out.ElapsedMs)
		outs = append(outs, out)
	}
	merged := core.MergeStringMatchOutputs(outs, 0)
	total, hits := merged.HitsPerKey, merged.TotalHits
	fmt.Printf("\npartitioned + sharded:  %d total hits across both nodes in %v\n",
		hits, elapsed.Round(time.Millisecond))

	// Verify against a sequential scan of both shards together.
	var want int
	for i := range dirs {
		data, err := os.ReadFile(filepath.Join(dirs[i], "encrypt.txt"))
		if err != nil {
			return err
		}
		want += len(workloads.StringMatchSeq(data, keys))
	}
	if int64(want) != hits {
		return fmt.Errorf("verification failed: cluster found %d hits, sequential scan %d", hits, want)
	}
	fmt.Printf("verified against a sequential scan: %d hits on both paths\n", want)
	for k, n := range total {
		fmt.Printf("%8d  %s\n", n, k)
	}
	return nil
}
