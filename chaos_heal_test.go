// Chaos integration test for the self-healing replicated storage tier: a
// word count over sealed R=2 fragment objects survives one SD daemon being
// killed mid-job WHILE another node's replica of a victim-held object
// carries an at-rest bit flip (injected through faultfs during PutFile).
// The job can only finish if the killed node is probed back to health —
// its copy is the last intact one — so byte-identical completion proves
// corrupt-replica fallback, fragment parking, probe-based mark-up, and
// heal-on-read all worked. A scrub afterwards restores full replication
// and a second scrub reports a quiet fleet.
// Run directly with: go test -run TestChaosHeal -v .
package mcsd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/faultfs"
	"mcsd/internal/fleet"
	"mcsd/internal/metrics"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

func TestChaosHealKillAndCorruptReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	assertGoroutineBudget(t, 3)
	corpus := workloads.GenerateTextBytes(60_000, 97)

	// Single-node reference: the bytes every healed fleet run must match.
	refDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(refDir, "corpus.txt"), corpus, 0o644); err != nil {
		t.Fatal(err)
	}
	refMod := core.WordCountModule(core.ModuleConfig{Store: core.DirStore(refDir), Workers: 1})
	refParams, err := json.Marshal(core.WordCountParams{DataFile: "corpus.txt", EmitPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	refRaw, err := refMod.Run(context.Background(), refParams)
	if err != nil {
		t.Fatal(err)
	}
	var refOut core.WordCountOutput
	if err := core.Decode(refRaw, &refOut); err != nil {
		t.Fatal(err)
	}
	want := fleet.CanonicalWordCount(&refOut)

	// Three nodes. The host writes replicas through faultfs layers (inert
	// until armed); daemons and modules use plain handles on the same dirs.
	names := []string{"sd-a", "sd-b", "sd-c"}
	const victim = "sd-a"
	shareDirs := make(map[string]string, len(names))
	hostFS := make(map[string]*faultfs.FS, len(names))
	storeShares := make(map[string]smartfam.FS, len(names))
	for _, name := range names {
		dir := t.TempDir()
		shareDirs[name] = dir
		hostFS[name] = faultfs.New(smartfam.DirFS(dir))
		storeShares[name] = hostFS[name]
	}
	store := fleet.NewStore(storeShares, 2, metrics.NewRegistry())

	// Placement is deterministic, so the sabotage targets are known before
	// any byte is written. Object A: victim is the home and some other node
	// Z holds the only other copy — Z's copy gets the at-rest bit flip, so
	// mid-job (victim dead, Z corrupt) the fragment has NO healthy intact
	// holder and completion requires the victim's rejoin. Object B: the
	// victim holds no copy and its home X (!= Z, to keep one faultfs match
	// filter per node) gets flipped — exercising live corrupt-fallback on a
	// healthy node.
	probeObj := func(check func(reps []string) bool) (string, []string) {
		for i := 0; i < 4096; i++ {
			name := fleet.ObjectName("corpus", i)
			if reps := store.Replicas(name); check(reps) {
				return name, reps
			}
		}
		t.Fatal("no object with the wanted placement in 4096 probes")
		return "", nil
	}
	objA, repsA := probeObj(func(reps []string) bool { return reps[0] == victim })
	zNode := repsA[1]
	objB, repsB := probeObj(func(reps []string) bool {
		return reps[0] != victim && reps[1] != victim && reps[0] != zNode
	})
	xNode := repsB[0]

	// Arm exactly one at-rest append corruption per sabotaged node, filtered
	// to the target object, then stage the corpus. faultfs flips one payload
	// bit while reporting success — the CRC32 trailer no longer matches.
	hostFS[zNode].CorruptMatch(objA)
	hostFS[zNode].CorruptNext(faultfs.OpAppend, 1)
	hostFS[xNode].CorruptMatch(objB)
	hostFS[xNode].CorruptNext(faultfs.OpAppend, 1)
	set, err := store.PutFile(context.Background(), "corpus", corpus, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if hostFS[zNode].Corrupted() != 1 || hostFS[xNode].Corrupted() != 1 {
		t.Fatalf("armed corruptions did not land: z=%d x=%d",
			hostFS[zNode].Corrupted(), hostFS[xNode].Corrupted())
	}
	for _, target := range []struct{ node, obj string }{{zNode, objA}, {xNode, objB}} {
		raw, err := smartfam.ReadFrom(storeShares[target.node], target.obj, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := smartfam.VerifyBlob(raw); err == nil {
			t.Fatalf("copy of %s on %s still verifies; corruption missed", target.obj, target.node)
		}
	}

	// Daemons with heartbeats; the victim's module parks every invocation
	// of its first life so the kill provably lands mid-fragment.
	const heartbeatEvery = 25 * time.Millisecond
	started := make(chan struct{})
	var startedOnce sync.Once
	newDaemon := func(name string, blockFirstLife bool) (*smartfam.Daemon, context.CancelFunc) {
		share := smartfam.DirFS(shareDirs[name])
		mod := smartfam.Module(core.WordCountModule(core.ModuleConfig{
			Store: core.FSStore(smartfam.DirFS(shareDirs[name])), Workers: 1,
		}))
		if blockFirstLife {
			inner := mod
			mod = smartfam.ModuleFunc{ModuleName: inner.Name(), Fn: func(ctx context.Context, p []byte) ([]byte, error) {
				startedOnce.Do(func() { close(started) })
				<-ctx.Done() // park until the daemon dies
				return nil, ctx.Err()
			}}
		}
		reg := smartfam.NewRegistry(share)
		if err := reg.Register(mod); err != nil {
			t.Fatal(err)
		}
		d := smartfam.NewDaemon(share, reg,
			smartfam.WithPollInterval(time.Millisecond),
			smartfam.WithHeartbeat(heartbeatEvery),
			smartfam.WithWorkers(2))
		dctx, dcancel := context.WithCancel(context.Background())
		go d.Run(dctx) //nolint:errcheck
		return d, dcancel
	}
	nodes := make([]fleet.Node, len(names))
	var victimKill context.CancelFunc
	for i, name := range names {
		_, dcancel := newDaemon(name, name == victim)
		if name == victim {
			victimKill = dcancel
		} else {
			defer dcancel()
		}
		client := smartfam.NewClient(smartfam.DirFS(shareDirs[name]), time.Millisecond)
		client.SetProbeStaleAfter(150 * time.Millisecond)
		nodes[i] = fleet.Node{Name: name, Session: client}
	}

	coord := fleet.NewCoordinator(nodes, fleet.Config{
		AttemptTimeout:  500 * time.Millisecond,
		MinStragglerAge: time.Hour, // isolate failover + heal from speculation
		ProbeInterval:   50 * time.Millisecond,
		ProbationWindow: 50 * time.Millisecond,
		ScanInterval:    5 * time.Millisecond,
		Store:           store,
	})
	type outcome struct {
		res *fleet.WordCountResult
		err error
	}
	done := make(chan outcome, 1)
	jobCtx, jobCancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer jobCancel()
	go func() {
		res, err := coord.WordCountSealed(jobCtx, fleet.SealedWordCountJob{Set: set})
		done <- outcome{res, err}
	}()

	// Kill the victim only once it is provably mid-fragment, then restart
	// it after its heartbeat has gone stale and its in-flight attempts have
	// timed out — the probe path, not a lucky response, must revive it.
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the victim to start a fragment")
	}
	victimKill()
	time.Sleep(1 * time.Second)
	_, restartCancel := newDaemon(victim, false)
	defer restartCancel()

	var out outcome
	select {
	case out = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("fleet job did not finish after kill + corrupt replica")
	}
	if out.err != nil {
		t.Fatalf("sealed word count failed: %v", out.err)
	}
	if got := fleet.CanonicalWordCount(&out.res.Output); !bytes.Equal(got, want) {
		t.Fatal("merged output differs from the single-node reference after kill + corruption")
	}
	stats := out.res.Stats
	if stats.NodeFailures < 1 {
		t.Errorf("NodeFailures = %d, want >= 1 (the killed daemon)", stats.NodeFailures)
	}
	if stats.CorruptReplicas < 1 {
		t.Errorf("CorruptReplicas = %d, want >= 1 (the bit-flipped copies)", stats.CorruptReplicas)
	}
	if stats.NodeRecoveries < 1 {
		t.Errorf("NodeRecoveries = %d, want >= 1 (the victim's probed rejoin)", stats.NodeRecoveries)
	}
	if stats.PerNode[victim] < 1 {
		t.Errorf("recovered node served no fragments: %v", stats.PerNode)
	}
	if stats.ReadRepairs < 1 {
		t.Errorf("ReadRepairs = %d, want >= 1 (heal-on-read after the gather)", stats.ReadRepairs)
	}
	// Exactly once per fragment.
	seen := make(map[int]bool)
	for _, fr := range out.res.Fragments {
		if seen[fr.Index] {
			t.Fatalf("fragment %d returned twice", fr.Index)
		}
		seen[fr.Index] = true
	}

	// Fresh damage after the job: scrub pass 1 must restore full
	// replication, pass 2 must report a quiet fleet — including the objects
	// sabotaged before the job, which heal-on-read already fixed.
	objC := set.Objects[len(set.Objects)-1]
	cNode := store.Replicas(objC)[1]
	rawC, err := smartfam.ReadFrom(storeShares[cNode], objC, 0)
	if err != nil {
		t.Fatal(err)
	}
	rawC[len(rawC)/2] ^= 0x01
	if err := storeShares[cNode].Create(objC); err != nil {
		t.Fatal(err)
	}
	if err := storeShares[cNode].Append(objC, rawC); err != nil {
		t.Fatal(err)
	}
	scrubCtx, scrubCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer scrubCancel()
	rep1, err := store.Scrub(scrubCtx, fleet.ScrubConfig{RateBytesPerSec: 64 << 20})
	if err != nil {
		t.Fatalf("scrub pass 1: %v", err)
	}
	if rep1.Repairs() < 1 {
		t.Fatalf("scrub pass 1 repaired nothing: %+v", rep1)
	}
	if len(rep1.Errors) != 0 || len(rep1.UnreachableNodes) != 0 {
		t.Fatalf("scrub pass 1 hit errors: %+v", rep1)
	}
	rep2, err := store.Scrub(scrubCtx, fleet.ScrubConfig{RateBytesPerSec: 64 << 20})
	if err != nil {
		t.Fatalf("scrub pass 2: %v", err)
	}
	if rep2.Repairs() != 0 || rep2.CorruptReplicas != 0 {
		t.Fatalf("scrub pass 2 still found damage: %+v", rep2)
	}
	if rep2.Objects != len(set.Objects) {
		t.Fatalf("scrub pass 2 saw %d objects, want %d", rep2.Objects, len(set.Objects))
	}
}
