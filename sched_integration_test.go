package mcsd_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/nfs"
	"mcsd/internal/sched"
	"mcsd/internal/smartfam"
)

// startScheduledSDNode boots an SD node whose daemon routes requests
// through a job scheduler — the mcsdd -queue path — plus a "sleeper"
// module the test can hold open to fill the queue deterministically.
func startScheduledSDNode(t *testing.T, depth, workers int, started chan<- struct{}, release <-chan struct{}) (*sdNode, *sched.Scheduler) {
	t.Helper()
	dir := t.TempDir()
	share := smartfam.DirFS(dir)
	reg := smartfam.NewRegistry(share)
	for _, m := range core.StandardModules(core.ModuleConfig{Store: core.DirStore(dir), Workers: workers}) {
		if err := reg.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	sleeper := smartfam.ModuleFunc{
		ModuleName: "sleeper",
		Fn: func(ctx context.Context, _ []byte) ([]byte, error) {
			started <- struct{}{}
			select {
			case <-release:
				return []byte(`"slept"`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	if err := reg.Register(sleeper); err != nil {
		t.Fatal(err)
	}

	sd := sched.New(sched.Config{MaxQueueDepth: depth, Workers: workers},
		func(ctx context.Context, job *sched.Job) ([]byte, error) {
			m, err := reg.Lookup(job.Module)
			if err != nil {
				return nil, err
			}
			return m.Run(ctx, job.Payload)
		})

	ctx, cancel := context.WithCancel(context.Background())
	daemon := smartfam.NewDaemon(share, reg,
		smartfam.WithPollInterval(time.Millisecond),
		smartfam.WithWorkers(workers),
		smartfam.WithScheduler(sd))
	go daemon.Run(ctx) //nolint:errcheck

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := nfs.NewServer(dir)
	go srv.Serve(ln) //nolint:errcheck

	node := &sdNode{dir: dir, addr: ln.Addr().String()}
	node.stop = func() {
		cancel()
		ln.Close()
		srv.Shutdown()
	}
	t.Cleanup(node.stop)
	return node, sd
}

// TestIntegrationQueueFullBackpressure drives the full stack — host
// runtime, TCP mount, smartFAM log files, daemon, scheduler — into
// backpressure: with the single worker held and the depth-1 queue
// occupied, a third request must come back as sched.ErrQueueFull at the
// host-side caller (acceptance criterion for the queue-full path).
func TestIntegrationQueueFullBackpressure(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	node, sd := startScheduledSDNode(t, 1, 1, started, release)

	mount, err := nfs.Dial(node.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mount.Close()

	rt := core.New(core.WithPollInterval(time.Millisecond))
	rt.AttachSD(node.addr, mount)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	type outcome struct {
		res *core.Result
		err error
	}
	results := make(chan outcome, 2)
	invoke := func() {
		res, err := rt.Invoke(ctx, "sleeper", struct{}{})
		results <- outcome{res, err}
	}

	// First request occupies the scheduler's only worker...
	go invoke()
	select {
	case <-started:
	case <-ctx.Done():
		t.Fatal("first sleeper never started")
	}
	// ...the second fills the depth-1 queue...
	go invoke()
	waitFor(t, ctx, func() bool { return sd.Status().Queued == 1 })

	// ...so the third is shed, and the rejection survives the smartFAM
	// wire as a typed error the caller can match.
	_, err = rt.Invoke(ctx, "sleeper", struct{}{})
	if !errors.Is(err, sched.ErrQueueFull) {
		t.Fatalf("err = %v, want sched.ErrQueueFull", err)
	}
	if rt.Metrics().Counter("core.queue_full_rejects").Value() != 1 {
		t.Fatal("queue-full rejection not counted on the host")
	}

	// Backpressure is transient: releasing the sleepers completes the
	// two admitted requests.
	close(release)
	for i := 0; i < 2; i++ {
		select {
		case o := <-results:
			if o.err != nil {
				t.Fatalf("admitted invoke failed: %v", o.err)
			}
			if string(o.res.Payload) != `"slept"` {
				t.Fatalf("payload = %q", o.res.Payload)
			}
		case <-ctx.Done():
			t.Fatal("admitted invokes never completed")
		}
	}
}

// TestIntegrationQueueStatusPublished reads the scheduler status the
// daemon publishes on the share — the transport behind `mcsdctl queue`.
func TestIntegrationQueueStatusPublished(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	defer close(release)
	node, _ := startScheduledSDNode(t, 4, 2, started, release)

	mount, err := nfs.Dial(node.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mount.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var st sched.Status
	waitFor(t, ctx, func() bool {
		data, err := smartfam.ReadFrom(mount, smartfam.QueueStatusName, 0)
		if err != nil || len(data) == 0 {
			return false
		}
		st, err = sched.UnmarshalStatus(data)
		return err == nil
	})
	if st.MaxQueueDepth != 4 || st.Workers != 2 {
		t.Fatalf("published status = %+v, want depth 4, workers 2", st)
	}
	if st.Format() == "" {
		t.Fatal("status Format is empty")
	}
}

// waitFor polls cond until it holds or ctx expires.
func waitFor(t *testing.T, ctx context.Context, cond func() bool) {
	t.Helper()
	for !cond() {
		select {
		case <-ctx.Done():
			t.Fatal("condition never held")
		case <-time.After(2 * time.Millisecond):
		}
	}
}
