// Repository-level integration tests: the full McSD stack — file-service
// export, smartFAM daemon, preloaded modules, host runtime — wired over
// real TCP, exercising the same paths the mcsdd/mcsdctl binaries use.
package mcsd_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/mapreduce"
	"mcsd/internal/netsim"
	"mcsd/internal/nfs"
	"mcsd/internal/partition"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

// sdNode is one in-process smart-storage node reachable over TCP.
type sdNode struct {
	dir  string
	addr string
	stop func()
}

// startSDNode boots an mcsdd-equivalent: export + daemon + modules.
func startSDNode(t *testing.T, workers int) *sdNode {
	t.Helper()
	dir := t.TempDir()
	share := smartfam.DirFS(dir)
	reg := smartfam.NewRegistry(share)
	for _, m := range core.StandardModules(core.ModuleConfig{Store: core.DirStore(dir), Workers: workers}) {
		if err := reg.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	daemon := smartfam.NewDaemon(share, reg, smartfam.WithPollInterval(time.Millisecond), smartfam.WithWorkers(workers))
	go daemon.Run(ctx) //nolint:errcheck

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := nfs.NewServer(dir)
	go srv.Serve(ln) //nolint:errcheck

	node := &sdNode{dir: dir, addr: ln.Addr().String()}
	node.stop = func() {
		cancel()
		ln.Close()
		srv.Shutdown()
	}
	t.Cleanup(node.stop)
	return node
}

func TestIntegrationWordCountOverTCP(t *testing.T) {
	node := startSDNode(t, 2)

	mount, err := nfs.Dial(node.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mount.Close()

	// Stage the corpus over the wire, exactly like `mcsdctl put`.
	corpus := workloads.GenerateTextBytes(2<<20, 17)
	if err := mount.WriteFile("data/corpus.txt", corpus); err != nil {
		t.Fatal(err)
	}

	rt := core.New(core.WithPollInterval(time.Millisecond))
	rt.AttachSD("sd0", mount)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	res, err := rt.Invoke(ctx, core.ModuleWordCount, core.WordCountParams{
		DataFile: "data/corpus.txt", PartitionBytes: 256 << 10, TopN: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offloaded || res.SD != "sd0" {
		t.Fatalf("not offloaded: %+v", res)
	}
	var out core.WordCountOutput
	if err := core.Decode(res.Payload, &out); err != nil {
		t.Fatal(err)
	}

	want := workloads.WordCountSeq(corpus)
	if out.UniqueWords != len(want) {
		t.Fatalf("UniqueWords = %d, want %d", out.UniqueWords, len(want))
	}
	top := workloads.TopWords(want, 1)[0]
	if out.Top[0].Word != top.Key || out.Top[0].Count != top.Value {
		t.Fatalf("Top[0] = %+v, want %s:%d", out.Top[0], top.Key, top.Value)
	}
	if out.Fragments < 4 {
		t.Fatalf("Fragments = %d, want out-of-core execution", out.Fragments)
	}
}

func TestIntegrationStringMatchOverThrottledLink(t *testing.T) {
	node := startSDNode(t, 2)

	// Mount through a modelled fast-Ethernet link: correctness must be
	// unaffected by pacing.
	link := netsim.NewLink(netsim.Profile{Name: "test", BandwidthBps: 20e6, Latency: 50 * time.Microsecond})
	mount, err := nfs.DialThrottled(t.Context(), node.addr, 5*time.Second, link)
	if err != nil {
		t.Fatal(err)
	}
	defer mount.Close()

	keys := workloads.GenerateKeys(5, 23)
	enc := workloads.GenerateEncryptBytes(1<<20, 29, keys, 0.1)
	if err := mount.WriteFile("data/enc.txt", enc); err != nil {
		t.Fatal(err)
	}
	if err := mount.WriteFile("data/keys.txt", []byte(strings.Join(keys, "\n")+"\n")); err != nil {
		t.Fatal(err)
	}

	rt := core.New(core.WithPollInterval(time.Millisecond))
	rt.AttachSD("sd0", mount)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	res, err := rt.Invoke(ctx, core.ModuleStringMatch, core.StringMatchParams{
		DataFile: "data/enc.txt", KeysFile: "data/keys.txt", PartitionBytes: 128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out core.StringMatchOutput
	if err := core.Decode(res.Payload, &out); err != nil {
		t.Fatal(err)
	}
	if want := int64(len(workloads.StringMatchSeq(enc, keys))); out.TotalHits != want {
		t.Fatalf("TotalHits = %d, want %d", out.TotalHits, want)
	}
}

func TestIntegrationOffloadMatchesHostSideRead(t *testing.T) {
	// The equivalence behind Fig. 9: the offloaded result must be
	// byte-identical to the host pulling the data over the share and
	// computing locally.
	node := startSDNode(t, 2)
	mount, err := nfs.Dial(node.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mount.Close()

	corpus := workloads.GenerateTextBytes(1<<20, 31)
	if err := mount.WriteFile("c.txt", corpus); err != nil {
		t.Fatal(err)
	}

	rt := core.New(core.WithPollInterval(time.Millisecond))
	rt.AttachSD("sd0", mount)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := rt.Invoke(ctx, core.ModuleWordCount, core.WordCountParams{
		DataFile: "c.txt", PartitionBytes: 128 << 10, TopN: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	var offloaded core.WordCountOutput
	if err := core.Decode(res.Payload, &offloaded); err != nil {
		t.Fatal(err)
	}

	// Host-only path: stream the same file over NFS into the local engine.
	reader, err := mount.OpenReader("c.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	hostRes, err := partition.Run(ctx, mapreduce.Config{Workers: 2},
		workloads.WordCountSpec(), bufio.NewReader(reader),
		partition.Options{FragmentSize: 128 << 10}, workloads.WordCountMerge)
	if err != nil {
		t.Fatal(err)
	}
	if offloaded.UniqueWords != len(hostRes.Pairs) {
		t.Fatalf("offloaded %d unique words, host-side %d", offloaded.UniqueWords, len(hostRes.Pairs))
	}
	var hostTotal int64
	for _, p := range hostRes.Pairs {
		hostTotal += int64(p.Value)
	}
	if offloaded.TotalWords != hostTotal {
		t.Fatalf("offloaded %d words, host-side %d", offloaded.TotalWords, hostTotal)
	}
}

func TestIntegrationFailoverBetweenRealNodes(t *testing.T) {
	nodeA := startSDNode(t, 1)
	nodeB := startSDNode(t, 1)

	mountA, err := nfs.Dial(nodeA.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mountA.Close()
	mountB, err := nfs.Dial(nodeB.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mountB.Close()

	// Both nodes hold the same small corpus.
	corpus := []byte("alpha beta alpha gamma alpha ")
	for _, m := range []*nfs.Client{mountA, mountB} {
		if err := m.WriteFile("c.txt", corpus); err != nil {
			t.Fatal(err)
		}
	}

	rt := core.New(core.WithPollInterval(time.Millisecond), core.WithAttemptTimeout(2*time.Second))
	rt.AttachSD("sdA", mountA)
	rt.AttachSD("sdB", mountB)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	params := core.WordCountParams{DataFile: "c.txt", TopN: 1}

	// Healthy run first.
	if _, err := rt.Invoke(ctx, core.ModuleWordCount, params); err != nil {
		t.Fatal(err)
	}

	// Kill node A entirely (daemon + export). The runtime must fail over.
	nodeA.stop()
	res, err := rt.Invoke(ctx, core.ModuleWordCount, params)
	if err != nil {
		t.Fatalf("failover run failed: %v", err)
	}
	if res.SD != "sdB" {
		t.Fatalf("served by %q, want sdB after node A died", res.SD)
	}
	var out core.WordCountOutput
	if err := core.Decode(res.Payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.Top[0].Word != "alpha" || out.Top[0].Count != 3 {
		t.Fatalf("failover result wrong: %+v", out.Top)
	}
}

func TestIntegrationSoakConcurrentOffloads(t *testing.T) {
	// Many concurrent jobs from several host runtimes against two SD
	// nodes: every result must be exactly right, every job balanced
	// across live nodes.
	if testing.Short() {
		t.Skip("soak test")
	}
	nodeA := startSDNode(t, 2)
	nodeB := startSDNode(t, 2)

	// Distinct corpora per node so results prove which node computed.
	corpora := make(map[string][]byte)
	for i, n := range []*sdNode{nodeA, nodeB} {
		m, err := nfs.Dial(n.addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		data := workloads.GenerateTextBytes(200_000, int64(70+i))
		if err := m.WriteFile("c.txt", data); err != nil {
			t.Fatal(err)
		}
		corpora[n.addr] = data
	}

	mountA, err := nfs.Dial(nodeA.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mountA.Close()
	mountB, err := nfs.Dial(nodeB.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mountB.Close()

	rt := core.New(core.WithPollInterval(time.Millisecond))
	rt.AttachSD(nodeA.addr, mountA)
	rt.AttachSD(nodeB.addr, mountB)

	wantByAddr := map[string]int{}
	for addr, data := range corpora {
		wantByAddr[addr] = len(workloads.WordCountSeq(data))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const jobs = 24
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	served := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := rt.Invoke(ctx, core.ModuleWordCount, core.WordCountParams{
				DataFile: "c.txt", PartitionBytes: 32 << 10,
			})
			if err != nil {
				errs[i] = err
				return
			}
			var out core.WordCountOutput
			if err := core.Decode(res.Payload, &out); err != nil {
				errs[i] = err
				return
			}
			if want := wantByAddr[res.SD]; out.UniqueWords != want {
				errs[i] = fmt.Errorf("job %d on %s: %d unique words, want %d",
					i, res.SD, out.UniqueWords, want)
				return
			}
			served[i] = res.SD
		}(i)
	}
	wg.Wait()
	counts := map[string]int{}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		counts[served[i]]++
	}
	if counts[nodeA.addr] == 0 || counts[nodeB.addr] == 0 {
		t.Fatalf("load not balanced: %v", counts)
	}
}

func TestIntegrationDataGenFilesRoundTrip(t *testing.T) {
	// datagen-equivalent flow: generate to disk, stage, offload.
	node := startSDNode(t, 2)
	local := filepath.Join(t.TempDir(), "gen.txt")
	f, err := os.Create(local)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workloads.GenerateText(f, 300_000, 47); err != nil {
		t.Fatal(err)
	}
	f.Close()

	mount, err := nfs.Dial(node.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mount.Close()
	data, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	if err := mount.WriteFile("gen.txt", data); err != nil {
		t.Fatal(err)
	}
	back, err := mount.ReadFile("gen.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("staged file corrupted")
	}
}
