module mcsd

go 1.24
