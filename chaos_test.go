// Chaos integration test for the crash-safe smartFAM protocol: a daemon
// is killed mid-batch under torn-write and transient-error injection,
// restarted over the same share and journal, and every submitted request
// must receive exactly one response with no duplicate module executions —
// verified through the recovery/dedupe/corruption metrics the tentpole
// introduces. Run directly with: go test -run TestChaos -v .
package mcsd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/faultfs"
	"mcsd/internal/fleet"
	"mcsd/internal/metrics"
	"mcsd/internal/nfs"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

func TestChaosCrashRestartExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	assertGoroutineBudget(t, 3)
	shareDir := t.TempDir()
	share := smartfam.DirFS(shareDir)
	jpath := filepath.Join(t.TempDir(), "journal")

	// The module under chaos: counts COMPLETED executions per payload
	// (aborted runs — the redo-log re-run case — do not count), and one
	// special "blocker" payload parks mid-execution until released, so the
	// first daemon is guaranteed to die with an open intent.
	var mu sync.Mutex
	completions := make(map[string]int)
	blockerStarted := make(chan struct{})
	var blockerOnce sync.Once
	release := make(chan struct{})
	newModule := func() smartfam.Module {
		return smartfam.ModuleFunc{ModuleName: "chaos", Fn: func(ctx context.Context, p []byte) ([]byte, error) {
			if string(p) == "blocker" {
				blockerOnce.Do(func() { close(blockerStarted) })
				select {
				case <-ctx.Done():
					return nil, ctx.Err() // daemon dying mid-execution
				case <-release:
				}
			}
			mu.Lock()
			completions[string(p)]++
			mu.Unlock()
			return append([]byte("done:"), p...), nil
		}}
	}

	reg1 := smartfam.NewRegistry(share)
	if err := reg1.Register(newModule()); err != nil {
		t.Fatal(err)
	}

	// Daemon 1, behind the fault layer. Heartbeat off so its only appends
	// through the faulted FS are response records and the one startup
	// status snapshot (status republish pushed out to an hour).
	ffs1 := faultfs.New(share)
	d1 := smartfam.NewDaemon(ffs1, reg1,
		smartfam.WithPollInterval(time.Millisecond),
		smartfam.WithHeartbeat(-1),
		smartfam.WithWorkers(3),
		smartfam.WithStatusInterval(time.Hour),
		smartfam.WithJournal(jpath))
	ctx1, kill1 := context.WithCancel(context.Background())
	d1Done := make(chan struct{})
	go func() {
		defer close(d1Done)
		d1.Run(ctx1) //nolint:errcheck
	}()

	// Let the startup .queue snapshot land before arming faults, so the
	// armed tear deterministically hits a response append.
	chaosWait(t, 10*time.Second, "startup status snapshot", func() bool {
		_, _, err := share.Stat(smartfam.QueueStatusName)
		return err == nil
	})
	ffs1.TearNext(1, 0.5)            // first response append is torn mid-record
	ffs1.FailNext(faultfs.OpStat, 3) // plus a burst of transient errors
	ffs1.FailNextWith(faultfs.OpRead, 1, faultfs.ErrInjected)

	// The batch: 12 concurrent invocations over the (unfaulted) share,
	// each with a caller-chosen idempotency ID. #0 is the blocker.
	const n = 12
	ids := make([]string, n)
	payloads := make([]string, n)
	results := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	cctx, ccancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer ccancel()
	for i := 0; i < n; i++ {
		ids[i] = smartfam.NewID()
		payloads[i] = "p" + ids[i]
		if i == 0 {
			payloads[i] = "blocker"
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := smartfam.NewClient(share, time.Millisecond)
			out, err := c.InvokeID(cctx, "chaos", ids[i], []byte(payloads[i]))
			results[i], errs[i] = string(out), err
		}(i)
	}

	// Kill daemon 1 only once it is provably mid-batch: the blocker is
	// executing (open intent in the journal) and at least a few other
	// requests have completed under fault injection.
	<-blockerStarted
	chaosWait(t, 30*time.Second, "some completions before the crash", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(completions) >= 3
	})
	kill1()
	<-d1Done
	close(release) // un-park the blocker for the second life

	// Daemon 2: same share, same journal, fresh fault layer with its own
	// transient faults. Recovery must re-run the blocker's open intent and
	// answer everything else exactly once.
	reg2 := smartfam.NewRegistry(share)
	if err := reg2.Register(newModule()); err != nil {
		t.Fatal(err)
	}
	ffs2 := faultfs.New(share)
	ffs2.FailNext(faultfs.OpList, 2)
	ffs2.FailNext(faultfs.OpStat, 2)
	d2 := smartfam.NewDaemon(ffs2, reg2,
		smartfam.WithPollInterval(time.Millisecond),
		smartfam.WithHeartbeat(-1),
		smartfam.WithWorkers(3),
		smartfam.WithStatusInterval(time.Hour),
		smartfam.WithJournal(jpath))
	ctx2, stop2 := context.WithCancel(context.Background())
	defer stop2()
	go d2.Run(ctx2) //nolint:errcheck

	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d (%s): %v", i, payloads[i], errs[i])
		}
		if want := "done:" + payloads[i]; results[i] != want {
			t.Fatalf("request %d: result %q, want %q", i, results[i], want)
		}
	}

	// Exactly-once execution: every payload completed exactly once across
	// both daemon lives, including the blocker (its first, aborted run
	// never completed).
	mu.Lock()
	for p, c := range completions {
		if c != 1 {
			mu.Unlock()
			t.Fatalf("payload %q completed %d times, want exactly 1", p, c)
		}
	}
	if len(completions) != n {
		mu.Unlock()
		t.Fatalf("%d payloads completed, want %d", len(completions), n)
	}
	mu.Unlock()

	// Exactly one response record per request on the share.
	data, err := smartfam.ReadFrom(share, smartfam.LogName("chaos"), 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _, err := smartfam.ParseRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	resCount := make(map[string]int)
	for _, r := range recs {
		if r.Kind == smartfam.KindResponse {
			resCount[r.ID]++
		}
	}
	for i, id := range ids {
		if resCount[id] != 1 {
			t.Fatalf("request %d has %d responses, want exactly 1", i, resCount[id])
		}
	}

	// A host retry reusing its original ID must be served from the cache:
	// one more response record, zero more executions.
	c := smartfam.NewClient(share, time.Millisecond)
	retryIdx := 1
	out, err := c.InvokeID(cctx, "chaos", ids[retryIdx], []byte(payloads[retryIdx]))
	if err != nil {
		t.Fatal(err)
	}
	if want := "done:" + payloads[retryIdx]; string(out) != want {
		t.Fatalf("retried result = %q, want %q", out, want)
	}
	mu.Lock()
	if completions[payloads[retryIdx]] != 1 {
		mu.Unlock()
		t.Fatalf("retry re-executed the module (%d completions)", completions[payloads[retryIdx]])
	}
	mu.Unlock()

	// The metrics tell the recovery story: the blocker's intent was
	// re-run, the retry was deduped, and the torn append was detected.
	if v := d2.Metrics().Counter("smartfam.daemon.recovered").Value(); v < 1 {
		t.Errorf("daemon2 recovered = %d, want >= 1 (the blocker's open intent)", v)
	}
	if v := d2.Metrics().Counter("smartfam.daemon.deduped").Value(); v < 1 {
		t.Errorf("daemon2 deduped = %d, want >= 1 (the ID-reusing retry)", v)
	}
	corrupt := d1.Metrics().Counter("smartfam.corrupt_records").Value() +
		d2.Metrics().Counter("smartfam.corrupt_records").Value()
	if corrupt < 1 {
		t.Errorf("corrupt_records = %d across both lives, want >= 1 (the torn append)", corrupt)
	}
	if v := d1.Metrics().Counter("smartfam.daemon.aborted").Value(); v < 1 {
		t.Errorf("daemon1 aborted = %d, want >= 1 (the blocker died with the daemon)", v)
	}
}

// TestChaosFleetNodeKillMidJob scatters a word count over three SD
// daemons, then kills one mid-job — while it is provably executing a
// fragment and with transient faults injected into its share. The fleet
// coordinator must mark the node down, re-place its fragments on the
// survivors, and still produce output byte-identical to a single-node run
// with every fragment answered exactly once.
func TestChaosFleetNodeKillMidJob(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	assertGoroutineBudget(t, 3)
	dataDir := t.TempDir()
	corpus := workloads.GenerateTextBytes(150_000, 83)
	if err := os.WriteFile(filepath.Join(dataDir, "corpus.txt"), corpus, 0o644); err != nil {
		t.Fatal(err)
	}

	// Single-node reference: the bytes every fleet run must reproduce.
	refMod := core.WordCountModule(core.ModuleConfig{Store: core.DirStore(dataDir), Workers: 1})
	refParams, err := json.Marshal(core.WordCountParams{DataFile: "corpus.txt", EmitPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	refRaw, err := refMod.Run(context.Background(), refParams)
	if err != nil {
		t.Fatal(err)
	}
	var refOut core.WordCountOutput
	if err := core.Decode(refRaw, &refOut); err != nil {
		t.Fatal(err)
	}
	want := fleet.CanonicalWordCount(&refOut)

	// Three daemons over their own shares; node 0 is the victim. Its first
	// word-count invocation parks mid-execution (closing started) until its
	// daemon dies, so the kill is guaranteed to land mid-fragment.
	const victim = 0
	started := make(chan struct{})
	var startedOnce sync.Once
	nodes := make([]fleet.Node, 3)
	shares := make([]smartfam.FS, 3)
	victimKill := context.CancelFunc(nil)
	for i := range nodes {
		share := smartfam.DirFS(t.TempDir())
		mod := core.WordCountModule(core.ModuleConfig{Store: core.DirStore(dataDir), Workers: 1})
		if i == victim {
			inner := mod
			first := true
			var mu sync.Mutex
			mod = smartfam.ModuleFunc{ModuleName: inner.Name(), Fn: func(ctx context.Context, p []byte) ([]byte, error) {
				mu.Lock()
				blocking := first
				first = false
				mu.Unlock()
				if blocking {
					startedOnce.Do(func() { close(started) })
					<-ctx.Done() // park until the daemon dies
					return nil, ctx.Err()
				}
				return inner.Run(ctx, p)
			}}
		}
		reg := smartfam.NewRegistry(share)
		if err := reg.Register(mod); err != nil {
			t.Fatal(err)
		}
		// The victim's daemon AND its host-side session run through a fault
		// layer with transient errors armed: recovery must ride them out.
		var nodeFS smartfam.FS = share
		if i == victim {
			ffs := faultfs.New(share)
			ffs.FailNext(faultfs.OpStat, 2)
			ffs.FailNext(faultfs.OpAppend, 1)
			nodeFS = ffs
		}
		daemon := smartfam.NewDaemon(nodeFS, reg,
			smartfam.WithPollInterval(time.Millisecond),
			smartfam.WithHeartbeat(-1),
			smartfam.WithWorkers(2))
		dctx, dcancel := context.WithCancel(context.Background())
		if i == victim {
			victimKill = dcancel
		} else {
			defer dcancel()
		}
		go daemon.Run(dctx) //nolint:errcheck
		shares[i] = nodeFS
		nodes[i] = fleet.Node{
			Name:    []string{"sd-a", "sd-b", "sd-c"}[i],
			Session: smartfam.NewClient(nodeFS, time.Millisecond),
		}
	}

	coord := fleet.NewCoordinator(nodes, fleet.Config{
		AttemptTimeout:  1500 * time.Millisecond,
		MinStragglerAge: time.Hour, // isolate the failover path from speculation
	})
	type outcome struct {
		res *fleet.WordCountResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := coord.WordCount(context.Background(), fleet.WordCountJob{
			DataFile:      "corpus.txt",
			TotalBytes:    int64(len(corpus)),
			FragmentBytes: 12 << 10,
		})
		done <- outcome{res, err}
	}()

	// Kill the victim only once it is provably mid-fragment.
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the victim to start a fragment")
	}
	victimKill()

	var out outcome
	select {
	case out = <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("fleet job did not finish after the node kill")
	}
	if out.err != nil {
		t.Fatalf("fleet word count failed after node kill: %v", out.err)
	}
	if got := fleet.CanonicalWordCount(&out.res.Output); !bytes.Equal(got, want) {
		t.Fatal("merged output differs from the single-node reference after a mid-job node kill")
	}
	if out.res.Stats.NodeFailures < 1 {
		t.Errorf("NodeFailures = %d, want >= 1 (the killed daemon)", out.res.Stats.NodeFailures)
	}
	if out.res.Stats.MovedFragments < 1 {
		t.Errorf("MovedFragments = %d, want >= 1 (re-placement off the dead node)", out.res.Stats.MovedFragments)
	}

	// Exactly once: every fragment has one winning result, and none of the
	// winners is the dead node's parked fragment.
	seen := make(map[int]bool)
	for _, fr := range out.res.Fragments {
		if seen[fr.Index] {
			t.Fatalf("fragment %d returned twice", fr.Index)
		}
		seen[fr.Index] = true
	}
	if len(seen) != len(out.res.Fragments) {
		t.Fatalf("fragment set inconsistent: %d unique of %d", len(seen), len(out.res.Fragments))
	}
}

// TestChaosGroupCommitFlushCrashExactlyOnce kills a daemon at the group
// commit's worst crash point: every request has executed, journaled DONE
// and joined a response batch, but no batch flush ever reaches the share —
// the window between the staged batch append and its commit, modelled here
// by a share that rejects every append until the daemon dies. The restarted
// daemon must replay every cached response from the journal exactly once:
// no re-execution, no duplicate response records, and every polling host
// unblocked.
func TestChaosGroupCommitFlushCrashExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	assertGoroutineBudget(t, 3)
	shareDir := t.TempDir()
	share := smartfam.DirFS(shareDir)
	jpath := filepath.Join(t.TempDir(), "journal")

	var mu sync.Mutex
	completions := make(map[string]int)
	newModule := func() smartfam.Module {
		return smartfam.ModuleFunc{ModuleName: "gcommit", Fn: func(_ context.Context, p []byte) ([]byte, error) {
			mu.Lock()
			completions[string(p)]++
			mu.Unlock()
			return append([]byte("done:"), p...), nil
		}}
	}

	reg1 := smartfam.NewRegistry(share)
	if err := reg1.Register(newModule()); err != nil {
		t.Fatal(err)
	}
	ffs1 := faultfs.New(share)
	d1 := smartfam.NewDaemon(ffs1, reg1,
		smartfam.WithPollInterval(time.Millisecond),
		smartfam.WithHeartbeat(-1),
		smartfam.WithWorkers(3),
		smartfam.WithStatusInterval(time.Hour),
		smartfam.WithResponseBatching(0, 0),
		smartfam.WithJournal(jpath))
	ctx1, kill1 := context.WithCancel(context.Background())
	d1Done := make(chan struct{})
	go func() {
		defer close(d1Done)
		d1.Run(ctx1) //nolint:errcheck
	}()

	// Let the startup .queue snapshot land, then cut off ALL further
	// appends: execution, DONE journalling and response caching proceed
	// normally while every batch flush exhausts its retries.
	chaosWait(t, 10*time.Second, "startup status snapshot", func() bool {
		_, _, err := share.Stat(smartfam.QueueStatusName)
		return err == nil
	})
	ffs1.FailNext(faultfs.OpAppend, 1<<20)

	const n = 10
	ids := make([]string, n)
	payloads := make([]string, n)
	results := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	cctx, ccancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer ccancel()
	for i := 0; i < n; i++ {
		ids[i] = smartfam.NewID()
		payloads[i] = "p" + ids[i]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := smartfam.NewClient(share, time.Millisecond)
			out, err := c.InvokeID(cctx, "gcommit", ids[i], []byte(payloads[i]))
			results[i], errs[i] = string(out), err
		}(i)
	}

	// A request's DONE entry is journaled before it joins a batch, so once
	// all n requests are counted under respond_errors (the batch leaders'
	// final flush failures) the journal provably holds every completed
	// execution — and not one response record reached the share.
	chaosWait(t, 30*time.Second, "every batch flush to fail", func() bool {
		return d1.Metrics().Counter("smartfam.respond_errors").Value() >= n
	})
	if v := d1.Metrics().Counter("smartfam.fam.resp_batch_flushes").Value(); v != 0 {
		t.Fatalf("%d response batches landed despite the injected append faults", v)
	}
	kill1()
	<-d1Done

	// Daemon 2: same share, same journal, its own transient faults.
	// Recovery must re-append every cached response without re-running the
	// module.
	reg2 := smartfam.NewRegistry(share)
	if err := reg2.Register(newModule()); err != nil {
		t.Fatal(err)
	}
	ffs2 := faultfs.New(share)
	ffs2.FailNext(faultfs.OpList, 2)
	ffs2.FailNext(faultfs.OpStat, 2)
	d2 := smartfam.NewDaemon(ffs2, reg2,
		smartfam.WithPollInterval(time.Millisecond),
		smartfam.WithHeartbeat(-1),
		smartfam.WithWorkers(3),
		smartfam.WithStatusInterval(time.Hour),
		smartfam.WithResponseBatching(0, 0),
		smartfam.WithJournal(jpath))
	ctx2, stop2 := context.WithCancel(context.Background())
	defer stop2()
	go d2.Run(ctx2) //nolint:errcheck

	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if want := "done:" + payloads[i]; results[i] != want {
			t.Fatalf("request %d: result %q, want %q", i, results[i], want)
		}
	}
	mu.Lock()
	for p, c := range completions {
		if c != 1 {
			mu.Unlock()
			t.Fatalf("payload %q completed %d times, want exactly 1", p, c)
		}
	}
	if len(completions) != n {
		mu.Unlock()
		t.Fatalf("%d payloads completed, want %d", len(completions), n)
	}
	mu.Unlock()
	assertOneResponsePerID(t, share, "gcommit", ids)
	if v := d2.Metrics().Counter("smartfam.daemon.recovered").Value(); v < n {
		t.Errorf("daemon2 recovered = %d, want >= %d (one cached-response replay per lost batch member)", v, n)
	}
}

// TestChaosPushDaemonKillMidNotifyStream is the push-topology variant: the
// daemon serves over a live server-push notify stream (behind the fault
// layer) with response batching armed, the host invokes through group
// commit with its routers mid-flight — and the daemon is killed with every
// response batch stuck before its commit. The host's notify stream to the
// server survives the daemon's death, so the restarted daemon's journal
// replay must reach the still-waiting push callers exactly once, without
// any host retry or fallback to polling.
func TestChaosPushDaemonKillMidNotifyStream(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	assertGoroutineBudget(t, 3)
	srv := nfs.NewServer(t.TempDir())
	defer srv.Shutdown()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln) //nolint:errcheck // torn down via Shutdown
	dial := func() *nfs.Client {
		conn, err := nfs.Dial(ln.Addr().String(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}
	jpath := filepath.Join(t.TempDir(), "journal")

	var mu sync.Mutex
	completions := make(map[string]int)
	newModule := func() smartfam.Module {
		return smartfam.ModuleFunc{ModuleName: "pushmod", Fn: func(_ context.Context, p []byte) ([]byte, error) {
			mu.Lock()
			completions[string(p)]++
			mu.Unlock()
			return append([]byte("done:"), p...), nil
		}}
	}

	// Daemon 1 over its own connection, behind the fault layer — which now
	// forwards Watch, so push stays armed THROUGH the faults.
	conn1 := dial()
	ffs1 := faultfs.New(conn1)
	reg1 := smartfam.NewRegistry(ffs1)
	if err := reg1.Register(newModule()); err != nil {
		t.Fatal(err)
	}
	d1 := smartfam.NewDaemon(ffs1, reg1,
		smartfam.WithPollInterval(time.Millisecond),
		smartfam.WithHeartbeat(-1),
		smartfam.WithWorkers(3),
		smartfam.WithStatusInterval(time.Hour),
		smartfam.WithResponseBatching(0, 0),
		smartfam.WithJournal(jpath))
	ctx1, kill1 := context.WithCancel(context.Background())
	d1Done := make(chan struct{})
	go func() {
		defer close(d1Done)
		d1.Run(ctx1) //nolint:errcheck
	}()

	// The host: its own connection, push routers plus request group commit.
	hconn := dial()
	defer hconn.Close()
	hc := smartfam.NewClient(hconn, time.Millisecond)
	hc.SetBatching(0, 0)
	hm := metrics.NewRegistry()
	hc.SetMetrics(hm)

	chaosWait(t, 10*time.Second, "startup status snapshot", func() bool {
		_, _, err := hconn.Stat(smartfam.QueueStatusName)
		return err == nil
	})
	chaosWait(t, 10*time.Second, "daemon notify stream to arm", func() bool {
		return d1.Metrics().Gauge("smartfam.fam.push_active").Value() == 1
	})
	ffs1.FailNext(faultfs.OpAppend, 1<<20) // every response batch commit fails from here on

	const n = 10
	ids := make([]string, n)
	payloads := make([]string, n)
	results := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	cctx, ccancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer ccancel()
	for i := 0; i < n; i++ {
		ids[i] = smartfam.NewID()
		payloads[i] = "p" + ids[i]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := hc.InvokeID(cctx, "pushmod", ids[i], []byte(payloads[i]))
			results[i], errs[i] = string(out), err
		}(i)
	}

	// Kill only once every request has executed, journaled DONE and failed
	// its batch commit: the daemon dies mid-notify-stream with n responses
	// stranded between their staged batch and the share.
	chaosWait(t, 30*time.Second, "every batch flush to fail", func() bool {
		return d1.Metrics().Counter("smartfam.respond_errors").Value() >= n
	})
	if v := d1.Metrics().Counter("smartfam.fam.push_events").Value(); v < 1 {
		t.Errorf("daemon1 push_events = %d, want >= 1 (the kill must land mid-stream, not in polling mode)", v)
	}
	kill1()
	<-d1Done
	conn1.Close()

	// Daemon 2: fresh connection, same journal, its own transient faults.
	conn2 := dial()
	defer conn2.Close()
	ffs2 := faultfs.New(conn2)
	reg2 := smartfam.NewRegistry(ffs2)
	if err := reg2.Register(newModule()); err != nil {
		t.Fatal(err)
	}
	ffs2.FailNext(faultfs.OpList, 2)
	ffs2.FailNext(faultfs.OpStat, 2)
	d2 := smartfam.NewDaemon(ffs2, reg2,
		smartfam.WithPollInterval(time.Millisecond),
		smartfam.WithHeartbeat(-1),
		smartfam.WithWorkers(3),
		smartfam.WithStatusInterval(time.Hour),
		smartfam.WithResponseBatching(0, 0),
		smartfam.WithJournal(jpath))
	ctx2, stop2 := context.WithCancel(context.Background())
	defer stop2()
	go d2.Run(ctx2) //nolint:errcheck

	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if want := "done:" + payloads[i]; results[i] != want {
			t.Fatalf("request %d: result %q, want %q", i, results[i], want)
		}
	}
	mu.Lock()
	for p, c := range completions {
		if c != 1 {
			mu.Unlock()
			t.Fatalf("payload %q completed %d times, want exactly 1", p, c)
		}
	}
	if len(completions) != n {
		mu.Unlock()
		t.Fatalf("%d payloads completed, want %d", len(completions), n)
	}
	mu.Unlock()
	assertOneResponsePerID(t, hconn, "pushmod", ids)
	if v := d2.Metrics().Counter("smartfam.daemon.recovered").Value(); v < n {
		t.Errorf("daemon2 recovered = %d, want >= %d", v, n)
	}

	// The host must have been carried by push + group commit end to end:
	// notify deliveries woke its routers, its requests travelled in batches,
	// and it never degraded to polling.
	if v := hm.Counter("smartfam.fam.push_events").Value(); v < 1 {
		t.Errorf("host push_events = %d, want >= 1 (responses must arrive via notify)", v)
	}
	if v := hm.Counter("smartfam.fam.batch_flushes").Value(); v < 1 {
		t.Errorf("host batch_flushes = %d, want >= 1 (requests must travel via group commit)", v)
	}
	if v := hm.Counter("smartfam.fam.degraded").Value(); v != 0 {
		t.Errorf("host degraded %d times; its stream to the server must survive the daemon kill", v)
	}
}

// assertOneResponsePerID reads the module log and fails unless every ID
// has exactly one response record on the share.
func assertOneResponsePerID(t *testing.T, fs smartfam.FS, module string, ids []string) {
	t.Helper()
	data, err := smartfam.ReadFrom(fs, smartfam.LogName(module), 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _, err := smartfam.ParseRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	resCount := make(map[string]int)
	for _, r := range recs {
		if r.Kind == smartfam.KindResponse {
			resCount[r.ID]++
		}
	}
	for i, id := range ids {
		if resCount[id] != 1 {
			t.Fatalf("request %d has %d responses, want exactly 1", i, resCount[id])
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func chaosWait(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
