package mcsd_test

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles the three CLI tools once per test run.
func buildBinaries(t *testing.T) (mcsdd, mcsdctl, datagen string) {
	t.Helper()
	if testing.Short() {
		t.Skip("building binaries is slow")
	}
	dir := t.TempDir()
	for _, tool := range []string{"mcsdd", "mcsdctl", "datagen"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return filepath.Join(dir, "mcsdd"), filepath.Join(dir, "mcsdctl"), filepath.Join(dir, "datagen")
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestCLIEndToEnd(t *testing.T) {
	mcsdd, mcsdctl, datagen := buildBinaries(t)
	exportDir := t.TempDir()
	addr := freePort(t)

	// Start the SD node.
	daemon := exec.Command(mcsdd, "-dir", exportDir, "-listen", addr, "-workers", "2")
	var daemonLog bytes.Buffer
	daemon.Stdout, daemon.Stderr = &daemonLog, &daemonLog
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill() //nolint:errcheck
		daemon.Wait()         //nolint:errcheck
	}()

	// Wait for the export to accept connections.
	deadline := time.Now().Add(15 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mcsdd never came up; log:\n%s", daemonLog.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	ctl := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(mcsdctl, append([]string{"-addr", addr}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("mcsdctl %v: %v\n%s\ndaemon log:\n%s", args, err, out, daemonLog.String())
		}
		return string(out)
	}

	// status: daemon live, modules listed.
	statusOut := ctl("status")
	if !strings.Contains(statusOut, "LIVE") {
		t.Fatalf("status does not report a live daemon:\n%s", statusOut)
	}
	for _, mod := range []string{"wordcount", "stringmatch", "matmul", "dbselect"} {
		if !strings.Contains(statusOut, mod) {
			t.Fatalf("status missing module %q:\n%s", mod, statusOut)
		}
	}

	// datagen -> put -> wordcount.
	corpus := filepath.Join(t.TempDir(), "corpus.txt")
	gen := exec.Command(datagen, "-kind", "text", "-size", "256K", "-seed", "7", "-out", corpus)
	if out, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("datagen: %v\n%s", err, out)
	}
	ctl("put", corpus, "data/corpus.txt")
	wcOut := ctl("wordcount", "-file", "data/corpus.txt", "-partition", "64K", "-top", "3")
	if !strings.Contains(wcOut, "total words:") || !strings.Contains(wcOut, "fragments: ") {
		t.Fatalf("wordcount output malformed:\n%s", wcOut)
	}
	if !strings.Contains(wcOut, fmt.Sprintf("offloaded to %s", addr)) {
		t.Fatalf("wordcount not marked offloaded:\n%s", wcOut)
	}

	// dbselect over generated sales data staged via put.
	sales := filepath.Join(t.TempDir(), "sales.csv")
	salesData := makeSalesCSV()
	if err := os.WriteFile(sales, salesData, 0o644); err != nil {
		t.Fatal(err)
	}
	ctl("put", sales, "data/sales.csv")
	dbOut := ctl("dbselect", "-file", "data/sales.csv", "-group-by", "region")
	if !strings.Contains(dbOut, "groups") || !strings.Contains(dbOut, "north") {
		t.Fatalf("dbselect output malformed:\n%s", dbOut)
	}

	// matmul (no data needed).
	mmOut := ctl("matmul", "-n", "32")
	if !strings.Contains(mmOut, "matmul 32x32") {
		t.Fatalf("matmul output malformed:\n%s", mmOut)
	}

	// kmeans over datagen-generated points.
	points := filepath.Join(t.TempDir(), "points.bin")
	genPts := exec.Command(datagen, "-kind", "points", "-count", "500",
		"-dim", "2", "-blobs", "3", "-seed", "11", "-out", points)
	if out, err := genPts.CombinedOutput(); err != nil {
		t.Fatalf("datagen points: %v\n%s", err, out)
	}
	ctl("put", points, "data/points.bin")
	kmOut := ctl("kmeans", "-file", "data/points.bin", "-dim", "2", "-k", "3", "-partition", "2K")
	if !strings.Contains(kmOut, "converged=true") {
		t.Fatalf("kmeans did not converge:\n%s", kmOut)
	}
	if strings.Count(kmOut, "centroid ") != 3 {
		t.Fatalf("kmeans centroids missing:\n%s", kmOut)
	}
}

// TestCLIExitCodesAndQueue pins the mcsdctl contract scripts rely on:
// distinct exit codes for "daemon unreachable" (2) vs "module failed"
// (3), errors on stderr with stdout clean, and the queue verb reporting
// the node's scheduler state.
func TestCLIExitCodesAndQueue(t *testing.T) {
	mcsdd, mcsdctl, _ := buildBinaries(t)

	ctl := func(addr string, args ...string) (stdout, stderr string, code int) {
		t.Helper()
		cmd := exec.Command(mcsdctl, append([]string{"-addr", addr}, args...)...)
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		err := cmd.Run()
		code = 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("mcsdctl %v did not run: %v", args, err)
			}
			code = ee.ExitCode()
		}
		return out.String(), errb.String(), code
	}

	// Nothing listens on this port: exit 2, error on stderr only.
	deadAddr := freePort(t)
	stdout, stderr, code := ctl(deadAddr, "status")
	if code != 2 {
		t.Fatalf("unreachable daemon: exit %d, want 2\nstderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Fatalf("unreachable daemon wrote to stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "unreachable") {
		t.Fatalf("stderr does not say unreachable: %q", stderr)
	}

	// Live daemon for the remaining cases.
	exportDir := t.TempDir()
	addr := freePort(t)
	daemon := exec.Command(mcsdd, "-dir", exportDir, "-listen", addr, "-workers", "2")
	var daemonLog bytes.Buffer
	daemon.Stdout, daemon.Stderr = &daemonLog, &daemonLog
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill() //nolint:errcheck
		daemon.Wait()         //nolint:errcheck
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mcsdd never came up; log:\n%s", daemonLog.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Module ran and failed (missing input file): exit 3, stderr only.
	stdout, stderr, code = ctl(addr, "wordcount", "-file", "data/missing.txt")
	if code != 3 {
		t.Fatalf("module failure: exit %d, want 3\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("module failure wrote to stdout: %q", stdout)
	}
	if stderr == "" {
		t.Fatal("module failure left stderr empty")
	}

	// The queue verb reads the scheduler status the daemon publishes.
	// The published snapshot refreshes every 250ms, so poll until it
	// reflects the wordcount that just went through the scheduler.
	var queueOut string
	deadline = time.Now().Add(15 * time.Second)
	for {
		var qcode int
		queueOut, stderr, qcode = ctl(addr, "queue")
		if qcode == 0 && strings.Contains(queueOut, "1 submitted") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue verb never reflected the job: exit %d\nstdout: %s\nstderr: %s\ndaemon log:\n%s",
				qcode, queueOut, stderr, daemonLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, want := range []string{"queue:", "lifetime:", "pressure:", "wait:"} {
		if !strings.Contains(queueOut, want) {
			t.Fatalf("queue output missing %q:\n%s", want, queueOut)
		}
	}
}

func TestCLIBenchCSVExport(t *testing.T) {
	if testing.Short() {
		t.Skip("building binaries is slow")
	}
	binDir := t.TempDir()
	bench := filepath.Join(binDir, "mcsd-bench")
	if out, err := exec.Command("go", "build", "-o", bench, "./cmd/mcsd-bench").CombinedOutput(); err != nil {
		t.Fatalf("building mcsd-bench: %v\n%s", err, out)
	}
	csvDir := t.TempDir()
	cmd := exec.Command(bench, "-fig9", "-claims", "-csv", csvDir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mcsd-bench: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "[FAIL]") {
		t.Fatalf("claims failed:\n%s", out)
	}
	entries, err := os.ReadDir(csvDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d CSV files for Fig. 9, want 3", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(csvDir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "size(MB),speedup\n") {
		t.Fatalf("CSV header wrong:\n%s", data)
	}
	if lines := strings.Count(string(data), "\n"); lines != 5 {
		t.Fatalf("CSV has %d lines, want header + 4 sizes", lines)
	}
}

func makeSalesCSV() []byte {
	var b bytes.Buffer
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "north,disk,%d,%d.50\n", i%9+1, i%40+1)
		fmt.Fprintf(&b, "south,cpu,%d,%d.25\n", i%7+1, i%30+2)
	}
	return b.Bytes()
}
