// Command mcsdd runs a McSD smart-storage node: it exports a directory
// over the built-in networked file service (the testbed's NFS role) and
// serves the preloaded data-intensive modules — word count, string match,
// matrix multiplication — through the smartFAM log-file mechanism.
//
// Usage:
//
//	mcsdd -dir /srv/mcsd -listen :9000 -workers 2
//
// A host node mounts the export with mcsdctl (or the core.Runtime API),
// stages data files into it, and invokes modules; mcsdd notices parameter
// writes in the module log files and runs the module over its local copy
// of the data — no bulk data crosses the network.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/memsim"
	"mcsd/internal/metrics"
	"mcsd/internal/sched"
	"mcsd/internal/smartfam"
	"mcsd/internal/units"

	nfssrv "mcsd/internal/nfs"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("mcsdd: %v", err)
	}
}

func run() error {
	var (
		dir     = flag.String("dir", "", "directory to export (share + data root); required")
		listen  = flag.String("listen", "127.0.0.1:9000", "address of the file-service export")
		workers = flag.Int("workers", 2, "cores dedicated to data-intensive modules (duo-core SD default)")
		memFlag = flag.String("mem", "", "optional memory limit for module admission control (e.g. 2G)")
		poll    = flag.Duration("poll", smartfam.DefaultPollInterval, "smartFAM watcher poll interval")
		compact = flag.Duration("compact", 5*time.Minute, "compact module logs after this long idle (0 disables)")
		queue   = flag.Int("queue", sched.DefaultMaxQueueDepth, "job queue depth before requests are rejected with backpressure (0 disables the scheduler)")
		journal = flag.String("journal", "auto", "crash-recovery journal path on local disk; \"auto\" = <dir>/.journal, \"none\" disables")
		wire    = flag.String("wire", "auto", "wire framing: \"auto\" detects binary or legacy gob per connection; \"gob\" forces the legacy codec (rollback)")
		batch   = flag.Bool("batch", false, "group-commit response records: one share append per batch window (fam v2)")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		return fmt.Errorf("-dir is required")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return fmt.Errorf("creating export dir: %w", err)
	}

	var acct *memsim.Accountant
	if *memFlag != "" {
		capBytes, err := units.ParseBytes(*memFlag)
		if err != nil {
			return err
		}
		cfg := memsim.DefaultConfig()
		cfg.CapacityBytes = capBytes
		acct = memsim.NewAccountant(cfg)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	srv := nfssrv.NewServer(*dir)
	switch *wire {
	case "auto", "gob":
	default:
		return fmt.Errorf("-wire must be \"auto\" or \"gob\", got %q", *wire)
	}
	if *wire == "gob" {
		srv.SetGobOnly(true)
		log.Printf("mcsdd: legacy gob wire codec forced (-wire gob)")
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Printf("mcsdd: file service: %v", err)
		}
	}()
	log.Printf("mcsdd: exporting %s on %s", *dir, ln.Addr())

	// The daemon's own share I/O: on the binary wire it LOOPS BACK through
	// the file service, so response appends (and registry writes) raise the
	// server's change notifications for pushed host watches — the fam v2
	// topology. The legacy gob wire has no notify lane, so the daemon keeps
	// the direct local-directory path and hosts poll (degraded mode).
	var share smartfam.FS = smartfam.DirFS(*dir)
	if *wire != "gob" {
		loop, err := nfssrv.Dial(ln.Addr().String(), 5*time.Second)
		if err != nil {
			log.Printf("mcsdd: notify loopback dial failed (%v); hosts fall back to polling", err)
		} else {
			defer loop.Close()
			share = loop
			log.Printf("mcsdd: share I/O looped back through the file service (push notifications on)")
		}
	}
	reg := smartfam.NewRegistry(share)
	modCfg := core.ModuleConfig{Store: core.DirStore(*dir), Workers: *workers, Memory: acct}
	for _, m := range core.StandardModules(modCfg) {
		if err := reg.Register(m); err != nil {
			return fmt.Errorf("registering %s: %w", m.Name(), err)
		}
	}
	log.Printf("mcsdd: preloaded modules: %v", reg.Names())

	daemonOpts := []smartfam.DaemonOption{
		smartfam.WithPollInterval(*poll), smartfam.WithWorkers(*workers),
	}
	if *batch {
		daemonOpts = append(daemonOpts, smartfam.WithResponseBatching(0, 0))
		log.Printf("mcsdd: response group commit on (-batch)")
	}
	switch *journal {
	case "none":
	case "auto":
		jpath := filepath.Join(*dir, ".journal")
		daemonOpts = append(daemonOpts, smartfam.WithJournal(jpath))
		log.Printf("mcsdd: crash-recovery journal at %s", jpath)
	default:
		daemonOpts = append(daemonOpts, smartfam.WithJournal(*journal))
		log.Printf("mcsdd: crash-recovery journal at %s", *journal)
	}
	if *queue > 0 {
		// The scheduler sits between the smartFAM log files and the module
		// registry: per-module fair ordering, memory-aware admission against
		// the node's budget, and queue-full backpressure to callers.
		sd := sched.New(sched.Config{
			MaxQueueDepth: *queue,
			Workers:       *workers,
			Memory:        acct,
		}, func(ctx context.Context, job *sched.Job) ([]byte, error) {
			m, err := reg.Lookup(job.Module)
			if err != nil {
				return nil, err
			}
			return m.Run(ctx, job.Payload)
		})
		daemonOpts = append(daemonOpts,
			smartfam.WithScheduler(sd),
			smartfam.WithFootprintEstimator(core.NewFootprintEstimator(modCfg.Store, acct)))
		log.Printf("mcsdd: scheduler on (queue depth %d, %d workers)", *queue, *workers)
	}
	daemon := smartfam.NewDaemon(share, reg, daemonOpts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Module logs grow one record per parameter write and one per result;
	// compact them whenever the node has been idle for a full interval.
	if *compact > 0 {
		go func() {
			ticker := time.NewTicker(*compact)
			defer ticker.Stop()
			var last int64
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					cur := daemon.Metrics().Counter(metrics.DaemonRequests).Value()
					if cur == last {
						if n, err := reg.CompactAll(); err != nil {
							log.Printf("mcsdd: log compaction: %v", err)
						} else if n > 0 {
							log.Printf("mcsdd: compacted %d module logs", n)
						}
					}
					last = cur
				}
			}
		}()
	}

	log.Printf("mcsdd: smartFAM daemon running (%d workers); Ctrl-C to stop", *workers)
	err = daemon.Run(ctx)
	ln.Close()
	srv.Shutdown()
	if err != nil && ctx.Err() != nil {
		log.Printf("mcsdd: shutting down")
		return nil
	}
	return err
}
