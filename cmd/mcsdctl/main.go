// Command mcsdctl is the host-side control tool for McSD storage nodes:
// it mounts a node's export, stages data files, and invokes the preloaded
// data-intensive modules through the smartFAM mechanism — the command-line
// face of the core.Runtime programming framework.
//
// Usage:
//
//	mcsdctl -addr 127.0.0.1:9000 status
//	mcsdctl -addr 127.0.0.1:9000 journal
//	mcsdctl -addr 127.0.0.1:9000 fam
//	mcsdctl -addr 127.0.0.1:9000 modules
//	mcsdctl -addr 127.0.0.1:9000 put corpus.txt data/corpus.txt
//	mcsdctl -addr 127.0.0.1:9000 wordcount -file data/corpus.txt -partition 64M -top 10
//	mcsdctl -sds 10.0.0.1:9000,10.0.0.2:9000 wordcount -file data/corpus.txt -fragment 64M
//	mcsdctl -sds 10.0.0.1:9000,10.0.0.2:9000 scrub -r 2 -rate 32M
//	mcsdctl -sds 10.0.0.1:9000,10.0.0.2:9000 heal -object corpus.00003.frag -r 2
//	mcsdctl -addr 127.0.0.1:9000 stringmatch -file data/enc.txt -keys data/keys.txt
//	mcsdctl -addr 127.0.0.1:9000 dbselect -file data/sales.csv -group-by region -min-price 100
//	mcsdctl -addr 127.0.0.1:9000 kmeans -file data/points.bin -dim 2 -k 4 -partition 16M
//	mcsdctl -addr 127.0.0.1:9000 matmul -n 256
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/fleet"
	"mcsd/internal/nfs"
	"mcsd/internal/sched"
	"mcsd/internal/smartfam"
	"mcsd/internal/units"
)

// Exit codes, so scripts driving mcsdctl can tell an unreachable daemon
// from a module that ran and failed from node backpressure without
// parsing error text.
const (
	exitFailure     = 1 // usage errors and everything unclassified
	exitUnreachable = 2 // the SD node's export could not be reached
	exitModule      = 3 // the module ran on the node and reported failure
	exitQueueFull   = 4 // the node's scheduler shed the request (retryable)
)

// errUnreachable marks failures to reach the SD node's export at all —
// connection refused, ping timeout — as distinct from errors the node
// itself reported.
var errUnreachable = errors.New("daemon unreachable")

func main() {
	err := run(os.Args[1:])
	if err == nil {
		return
	}
	code := exitCode(err)
	fmt.Fprint(os.Stderr, stderrLine(err, code))
	os.Exit(code)
}

// stderrLine renders the error the way scripts see it: the classified
// codes (2/3/4) always carry their code and meaning, so the distinction
// is visible in logs even where the exit status itself was swallowed by
// a pipeline.
func stderrLine(err error, code int) string {
	if label := exitLabel(code); label != "" {
		return fmt.Sprintf("mcsdctl: %v (exit %d: %s)\n", err, code, label)
	}
	return fmt.Sprintf("mcsdctl: %v\n", err)
}

// exitLabel names the classified exit codes; unclassified failures (1)
// have no label.
func exitLabel(code int) string {
	switch code {
	case exitUnreachable:
		return "node unreachable"
	case exitModule:
		return "module failed on the node"
	case exitQueueFull:
		return "node busy, retry later"
	}
	return ""
}

// exitCode classifies err. Queue-full wins over the module-error check:
// the rejection crosses the wire as an error record, but it means "try
// again later", not "the module is broken".
func exitCode(err error) int {
	var merr *smartfam.ModuleError
	switch {
	case errors.Is(err, sched.ErrQueueFull):
		return exitQueueFull
	case errors.As(err, &merr):
		return exitModule
	case errors.Is(err, errUnreachable), errors.Is(err, core.ErrNoExecutor):
		return exitUnreachable
	}
	return exitFailure
}

func run(args []string) error {
	global := flag.NewFlagSet("mcsdctl", flag.ContinueOnError)
	addr := global.String("addr", "127.0.0.1:9000", "address of the SD node's export")
	sds := global.String("sds", "", "comma-separated exports of a multi-SD fleet (wordcount only); overrides -addr")
	timeout := global.Duration("timeout", 10*time.Minute, "overall invocation timeout")
	conns := global.Int("conns", 2, "pooled connections to the export")
	wire := global.String("wire", "binary", "wire framing: \"binary\" (pipelined frames) or \"gob\" for pre-framing daemons")
	cacheFlag := global.String("cache", "64M", "host-side block cache over the mount (e.g. 128M); \"0\" disables")
	if err := global.Parse(args); err != nil {
		return err
	}
	cacheBytes, err := units.ParseBytes(*cacheFlag)
	if err != nil {
		return fmt.Errorf("-cache: %w", err)
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: mcsdctl [-addr host:port | -sds a:p,b:p] <status|queue|journal|fam|modules|put|wordcount|stringmatch|matmul|dbselect|kmeans|scrub|heal> ...")
	}

	if *sds != "" {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		addrs := strings.Split(*sds, ",")
		switch rest[0] {
		case "wordcount":
			return fleetWordcount(ctx, addrs, *conns, *wire, rest[1:])
		case "scrub":
			return fleetScrub(ctx, addrs, *conns, *wire, rest[1:])
		case "heal":
			return fleetHeal(ctx, addrs, *conns, *wire, rest[1:])
		}
		return fmt.Errorf("-sds drives the fleet path, which supports wordcount, scrub, and heal (got %q)", rest[0])
	}

	client, err := nfs.DialPool(*addr, 10*time.Second, *conns)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", errUnreachable, *addr, err)
	}
	defer client.Close()
	switch *wire {
	case "binary":
	case "gob":
		client.SetWire(nfs.WireGob)
	default:
		return fmt.Errorf("-wire must be \"binary\" or \"gob\", got %q", *wire)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// The runtime's smartFAM result reads go through the host-side block
	// cache; the control verbs below keep the raw pool (they want fresh
	// metadata, not cached blocks).
	var share smartfam.FS = client
	if cacheBytes > 0 {
		share = nfs.NewCachedFS(client, nfs.NewBlockCache(cacheBytes, nil))
	}
	rt := core.New()
	rt.AttachSD(*addr, share)

	switch cmd, cmdArgs := rest[0], rest[1:]; cmd {
	case "modules":
		return listModules(client)
	case "status":
		return status(client)
	case "queue":
		return queueStatus(client)
	case "journal":
		return journalStatus(client)
	case "fam":
		return famStatus(client)
	case "put":
		return put(client, cmdArgs)
	case "wordcount":
		return wordcount(ctx, rt, cmdArgs)
	case "stringmatch":
		return stringmatch(ctx, rt, cmdArgs)
	case "matmul":
		return matmul(ctx, rt, cmdArgs)
	case "dbselect":
		return dbselect(ctx, rt, cmdArgs)
	case "kmeans":
		return kmeans(ctx, rt, cmdArgs)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func listModules(client *nfs.Pool) error {
	names, err := client.List()
	if err != nil {
		return err
	}
	found := 0
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".log" {
			fmt.Println(n[:len(n)-4])
			found++
		}
	}
	if found == 0 {
		fmt.Println("(no modules preloaded)")
	}
	return nil
}

// status reports node liveness and the preloaded modules — the operator's
// first stop when an offload hangs.
func status(client *nfs.Pool) error {
	if err := client.Ping(); err != nil {
		return fmt.Errorf("%w: %v", errUnreachable, err)
	}
	fmt.Println("export:    reachable")
	if ts, ok := smartfam.ReadHeartbeat(client); ok {
		age := time.Since(ts).Round(time.Millisecond)
		state := "LIVE"
		if age > 5*time.Second {
			state = "STALE"
		}
		fmt.Printf("daemon:    %s (heartbeat %v old)\n", state, age)
	} else {
		fmt.Println("daemon:    no heartbeat file (old daemon or not started)")
	}
	names, err := client.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		if module, ok := smartfam.ModuleFromLog(n); ok {
			size, _, err := client.Stat(n)
			if err != nil {
				continue
			}
			gen := smartfam.ReadGeneration(client, module)
			fmt.Printf("module:    %-14s log %s, compaction generation %d\n",
				module, units.FormatBytes(size), gen)
		}
	}
	return nil
}

// queueStatus prints the scheduler status the daemon publishes on the
// share: queue depth, memory reservations against the budget, lifetime
// counters, and per-tenant fair-queuing state.
func queueStatus(client *nfs.Pool) error {
	if err := client.Ping(); err != nil {
		return fmt.Errorf("%w: %v", errUnreachable, err)
	}
	data, err := smartfam.ReadFrom(client, smartfam.QueueStatusName, 0)
	if err != nil || len(data) == 0 {
		return fmt.Errorf("no queue status on the share (scheduler disabled, or daemon not started)")
	}
	st, err := sched.UnmarshalStatus(data)
	if err != nil {
		return fmt.Errorf("queue status unreadable: %w", err)
	}
	fmt.Print(st.Format())
	return nil
}

// journalStatus prints the daemon's crash-recovery counters — requests
// replayed after a restart, duplicates answered from the response cache,
// corrupt log records skipped, replies dropped after exhausting retries —
// published under the same status snapshot the queue verb reads.
func journalStatus(client *nfs.Pool) error {
	if err := client.Ping(); err != nil {
		return fmt.Errorf("%w: %v", errUnreachable, err)
	}
	data, err := smartfam.ReadFrom(client, smartfam.QueueStatusName, 0)
	if err != nil || len(data) == 0 {
		return fmt.Errorf("no status snapshot on the share (journal disabled, or daemon not started)")
	}
	st, err := sched.UnmarshalStatus(data)
	if err != nil {
		return fmt.Errorf("status snapshot unreadable: %w", err)
	}
	if len(st.Extra) == 0 {
		return fmt.Errorf("status snapshot has no journal counters (old daemon?)")
	}
	show := func(label, key string) {
		if v, ok := st.Extra[key]; ok {
			fmt.Printf("%-11s%d\n", label+":", v)
		}
	}
	show("recovered", "smartfam.daemon.recovered")
	show("deduped", "smartfam.daemon.deduped")
	show("aborted", "smartfam.daemon.aborted")
	show("corrupt", "smartfam.corrupt_records")
	show("dropped", "smartfam.respond_errors")
	return nil
}

// famStatus prints the push-mode front door's state (fam v2): whether the
// daemon's notify stream is live or the node has degraded to polling, how
// many push events it served, and the response group-commit counters —
// read from the same published snapshot as the queue and journal verbs.
func famStatus(client *nfs.Pool) error {
	if err := client.Ping(); err != nil {
		return fmt.Errorf("%w: %v", errUnreachable, err)
	}
	data, err := smartfam.ReadFrom(client, smartfam.QueueStatusName, 0)
	if err != nil || len(data) == 0 {
		return fmt.Errorf("no status snapshot on the share (daemon not started?)")
	}
	st, err := sched.UnmarshalStatus(data)
	if err != nil {
		return fmt.Errorf("status snapshot unreadable: %w", err)
	}
	active, ok := st.Extra["smartfam.fam.push_active"]
	if !ok {
		return fmt.Errorf("status snapshot has no fam counters (pre-push daemon?)")
	}
	mode := "degraded (polling + rescan sweep)"
	if active == 1 {
		mode = "push (server-push notify stream live)"
	}
	fmt.Printf("notify:      %s\n", mode)
	fmt.Printf("push events: %d\n", st.Extra["smartfam.fam.push_events"])
	fmt.Printf("degraded:    %d transition(s) to polling\n", st.Extra["smartfam.fam.degraded"])
	flushes := st.Extra["smartfam.fam.resp_batch_flushes"]
	records := st.Extra["smartfam.fam.resp_batch_records"]
	if flushes > 0 {
		fmt.Printf("group commit: %d flushes carrying %d responses (avg %.1f/flush)\n",
			flushes, records, float64(records)/float64(flushes))
	} else {
		fmt.Println("group commit: off or idle (no batched responses yet)")
	}
	return nil
}

func put(client *nfs.Pool, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: put <local-file> <remote-path>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	if err := client.WriteFile(args[1], data); err != nil {
		return err
	}
	fmt.Printf("staged %s -> %s (%s)\n", args[0], args[1], units.FormatBytes(int64(len(data))))
	return nil
}

func wordcount(ctx context.Context, rt *core.Runtime, args []string) error {
	fs := flag.NewFlagSet("wordcount", flag.ContinueOnError)
	file := fs.String("file", "", "data file on the SD node")
	partFlag := fs.String("partition", "", "partition size (e.g. 600M); empty = native")
	top := fs.Int("top", 20, "rows of the frequency table to print")
	workers := fs.Int("workers", 0, "worker override (0 = node default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("wordcount: -file is required")
	}
	params := core.WordCountParams{DataFile: *file, TopN: *top, Workers: *workers}
	if *partFlag != "" {
		n, err := units.ParseBytes(*partFlag)
		if err != nil {
			return err
		}
		params.PartitionBytes = n
	}
	res, err := rt.Invoke(ctx, core.ModuleWordCount, params)
	if err != nil {
		return err
	}
	var out core.WordCountOutput
	if err := core.Decode(res.Payload, &out); err != nil {
		return err
	}
	fmt.Printf("total words: %d  unique: %d  fragments: %d  module time: %dms  (offloaded to %s)\n",
		out.TotalWords, out.UniqueWords, out.Fragments, out.ElapsedMs, res.SD)
	if out.Fragments > 1 {
		fmt.Printf("fragment keys: %d  shuffle: %dms  merge: %dms\n",
			out.FragmentKeys, out.ShuffleMs, out.MergeMs)
	}
	for _, wf := range out.Top {
		fmt.Printf("%8d  %s\n", wf.Count, wf.Word)
	}
	return nil
}

// fleetWordcount scatters one word count across several SD nodes through
// the fleet coordinator: HRW placement, per-node windows, straggler
// re-execution, and a host-side merge that is byte-identical to a
// single-node run.
func fleetWordcount(ctx context.Context, addrs []string, conns int, wire string, args []string) error {
	fs := flag.NewFlagSet("wordcount", flag.ContinueOnError)
	file := fs.String("file", "", "data file reachable from every SD node")
	fragFlag := fs.String("fragment", "", "scatter fragment size (e.g. 64M); empty = 4 fragments per node")
	partFlag := fs.String("partition", "", "node-side partition size within a fragment; empty = native")
	top := fs.Int("top", 20, "rows of the frequency table to print")
	workers := fs.Int("workers", 0, "per-node worker override (0 = node default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("wordcount: -file is required")
	}

	nodes := make([]fleet.Node, 0, len(addrs))
	var total int64
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		pool, err := nfs.DialPool(a, 10*time.Second, conns)
		if err != nil {
			return fmt.Errorf("%w: %s: %v", errUnreachable, a, err)
		}
		defer pool.Close()
		if wire == "gob" {
			pool.SetWire(nfs.WireGob)
		}
		if total == 0 {
			if total, _, err = pool.Stat(*file); err != nil {
				return fmt.Errorf("stat %s on %s: %w", *file, a, err)
			}
		}
		nodes = append(nodes, fleet.Node{Name: a, Session: smartfam.NewClient(pool, 0)})
	}
	if len(nodes) == 0 {
		return fmt.Errorf("-sds lists no nodes")
	}

	job := fleet.WordCountJob{DataFile: *file, TotalBytes: total, Workers: *workers, TopN: *top}
	if *fragFlag != "" {
		n, err := units.ParseBytes(*fragFlag)
		if err != nil {
			return err
		}
		job.FragmentBytes = n
	} else {
		per := int64(4 * len(nodes))
		job.FragmentBytes = (total + per - 1) / per
	}
	if *partFlag != "" {
		n, err := units.ParseBytes(*partFlag)
		if err != nil {
			return err
		}
		job.PartitionBytes = n
	}

	coord := fleet.NewCoordinator(nodes, fleet.Config{AttemptTimeout: 10 * time.Minute})
	res, err := coord.WordCount(ctx, job)
	if err != nil {
		return err
	}
	out := res.Output
	fmt.Printf("total words: %d  unique: %d  fragments: %d  (scattered over %d nodes)\n",
		out.TotalWords, out.UniqueWords, len(res.Fragments), len(nodes))
	for _, n := range nodes {
		fmt.Printf("node %-22s %d fragments\n", n.Name, res.Stats.PerNode[n.Name])
	}
	if res.Stats.Speculations+res.Stats.NodeFailures+res.Stats.QueueSteals > 0 {
		fmt.Printf("speculated: %d  re-placed: %d  stolen: %d  node failures: %d\n",
			res.Stats.Speculations, res.Stats.MovedFragments, res.Stats.QueueSteals, res.Stats.NodeFailures)
	}
	for _, wf := range out.Top {
		fmt.Printf("%8d  %s\n", wf.Count, wf.Word)
	}
	return nil
}

// dialFleetShares opens one pooled export per fleet address and returns the
// node->share map the replicated store places over. Node names are the
// addresses themselves, matching the fleet coordinator's convention.
func dialFleetShares(addrs []string, conns int, wire string) (map[string]smartfam.FS, func(), error) {
	shares := make(map[string]smartfam.FS)
	var pools []*nfs.Pool
	closeAll := func() {
		for _, p := range pools {
			p.Close()
		}
	}
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		pool, err := nfs.DialPool(a, 10*time.Second, conns)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("%w: %s: %v", errUnreachable, a, err)
		}
		if wire == "gob" {
			pool.SetWire(nfs.WireGob)
		}
		pools = append(pools, pool)
		shares[a] = pool
	}
	if len(shares) == 0 {
		closeAll()
		return nil, nil, fmt.Errorf("-sds lists no nodes")
	}
	return shares, closeAll, nil
}

// fleetScrub runs one background-integrity pass over the fleet's replicated
// objects: every copy is CRC-verified (server-side chunk checksums where the
// export supports them), corrupt copies are rewritten from an intact
// replica, and missing copies are re-created — at a bounded byte rate so a
// scrub cannot starve foreground jobs.
func fleetScrub(ctx context.Context, addrs []string, conns int, wire string, args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ContinueOnError)
	repl := fs.Int("r", 2, "replication factor the objects were written with")
	rateFlag := fs.String("rate", "32M", "scrub I/O rate cap per second (e.g. 32M); \"0\" unpaced")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rate, err := units.ParseBytes(*rateFlag)
	if err != nil {
		return fmt.Errorf("-rate: %w", err)
	}
	shares, closeAll, err := dialFleetShares(addrs, conns, wire)
	if err != nil {
		return err
	}
	defer closeAll()
	store := fleet.NewStore(shares, *repl, nil)
	rep, err := store.Scrub(ctx, fleet.ScrubConfig{RateBytesPerSec: rate})
	if err != nil {
		return err
	}
	fmt.Printf("scrubbed %d objects across %d nodes: %s scanned in %d files\n",
		rep.Objects, len(shares), units.FormatBytes(rep.BytesScanned), rep.FilesScanned)
	fmt.Printf("corrupt replicas: %d  repaired: %d  re-replicated: %d  orphans: %d  corrupt log records: %d\n",
		rep.CorruptReplicas, rep.RepairedReplicas, rep.ReReplicated, rep.Orphans, rep.CorruptLogRecords)
	for _, n := range rep.UnreachableNodes {
		fmt.Printf("unreachable: %s\n", n)
	}
	for _, e := range rep.Errors {
		fmt.Printf("unrestored: %s\n", e)
	}
	if len(rep.Errors) > 0 {
		return fmt.Errorf("scrub could not restore %d objects", len(rep.Errors))
	}
	return nil
}

// fleetHeal repairs a single named object on demand — the operator's
// targeted version of a scrub pass, for when a read already reported the
// damage.
func fleetHeal(ctx context.Context, addrs []string, conns int, wire string, args []string) error {
	fs := flag.NewFlagSet("heal", flag.ContinueOnError)
	object := fs.String("object", "", "replicated object to repair (e.g. corpus.00003.frag)")
	repl := fs.Int("r", 2, "replication factor the object was written with")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *object == "" {
		return fmt.Errorf("heal: -object is required")
	}
	shares, closeAll, err := dialFleetShares(addrs, conns, wire)
	if err != nil {
		return err
	}
	defer closeAll()
	store := fleet.NewStore(shares, *repl, nil)
	res, err := store.Repair(ctx, *object)
	if err != nil {
		return err
	}
	fmt.Printf("healed %s: repaired %d corrupt, re-replicated %d missing (holders: %s)\n",
		*object, res.RepairedCorrupt, res.ReReplicated, strings.Join(store.Replicas(*object), ","))
	for _, n := range res.Unreachable {
		fmt.Printf("unreachable: %s\n", n)
	}
	return nil
}

func stringmatch(ctx context.Context, rt *core.Runtime, args []string) error {
	fs := flag.NewFlagSet("stringmatch", flag.ContinueOnError)
	file := fs.String("file", "", "encrypt file on the SD node")
	keys := fs.String("keys", "", "keys file on the SD node")
	partFlag := fs.String("partition", "", "partition size; empty = native")
	sample := fs.Int("sample", 5, "matching lines to print verbatim")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" || *keys == "" {
		return fmt.Errorf("stringmatch: -file and -keys are required")
	}
	params := core.StringMatchParams{DataFile: *file, KeysFile: *keys, SampleLines: *sample}
	if *partFlag != "" {
		n, err := units.ParseBytes(*partFlag)
		if err != nil {
			return err
		}
		params.PartitionBytes = n
	}
	res, err := rt.Invoke(ctx, core.ModuleStringMatch, params)
	if err != nil {
		return err
	}
	var out core.StringMatchOutput
	if err := core.Decode(res.Payload, &out); err != nil {
		return err
	}
	fmt.Printf("total hits: %d across %d keys  fragments: %d  module time: %dms\n",
		out.TotalHits, len(out.HitsPerKey), out.Fragments, out.ElapsedMs)
	for k, n := range out.HitsPerKey {
		fmt.Printf("%8d  %s\n", n, k)
	}
	for _, line := range out.Sample {
		fmt.Printf("  | %s\n", line)
	}
	return nil
}

func dbselect(ctx context.Context, rt *core.Runtime, args []string) error {
	fs := flag.NewFlagSet("dbselect", flag.ContinueOnError)
	file := fs.String("file", "", "sales CSV on the SD node")
	groupBy := fs.String("group-by", "region", "region | product")
	minPrice := fs.Float64("min-price", 0, "price filter")
	partFlag := fs.String("partition", "", "partition size; empty = native")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("dbselect: -file is required")
	}
	params := core.DBSelectParams{DataFile: *file, GroupBy: *groupBy, MinPrice: *minPrice}
	if *partFlag != "" {
		n, err := units.ParseBytes(*partFlag)
		if err != nil {
			return err
		}
		params.PartitionBytes = n
	}
	res, err := rt.Invoke(ctx, core.ModuleDBSelect, params)
	if err != nil {
		return err
	}
	var out core.DBSelectOutput
	if err := core.Decode(res.Payload, &out); err != nil {
		return err
	}
	fmt.Printf("%d groups  fragments: %d  module time: %dms\n",
		out.Groups, out.Fragments, out.ElapsedMs)
	for g, v := range out.Revenue {
		fmt.Printf("%14.2f  %s\n", v, g)
	}
	return nil
}

func kmeans(ctx context.Context, rt *core.Runtime, args []string) error {
	fs := flag.NewFlagSet("kmeans", flag.ContinueOnError)
	file := fs.String("file", "", "encoded points file on the SD node (datagen -kind points)")
	dim := fs.Int("dim", 2, "point dimensionality")
	k := fs.Int("k", 4, "clusters")
	rounds := fs.Int("rounds", 50, "max rounds")
	partFlag := fs.String("partition", "", "per-round fragment size; empty = native")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("kmeans: -file is required")
	}
	params := core.KMeansParams{DataFile: *file, Dim: *dim, K: *k, MaxRounds: *rounds}
	if *partFlag != "" {
		n, err := units.ParseBytes(*partFlag)
		if err != nil {
			return err
		}
		params.PartitionBytes = n
	}
	out, _, err := rt.KMeans(ctx, params)
	if err != nil {
		return err
	}
	fmt.Printf("k-means: %d rounds, converged=%v (last shift %.3g), module time %dms\n",
		out.Rounds, out.Converged, out.LastShift, out.ElapsedMs)
	for i, c := range out.Centroids {
		fmt.Printf("centroid %d: %.3f\n", i, c)
	}
	return nil
}

func matmul(ctx context.Context, rt *core.Runtime, args []string) error {
	fs := flag.NewFlagSet("matmul", flag.ContinueOnError)
	n := fs.Int("n", 256, "matrix dimension")
	seedA := fs.Int64("seed-a", 1, "seed of matrix A")
	seedB := fs.Int64("seed-b", 2, "seed of matrix B")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := rt.Invoke(ctx, core.ModuleMatMul, core.MatMulParams{N: *n, SeedA: *seedA, SeedB: *seedB})
	if err != nil {
		return err
	}
	var out core.MatMulOutput
	if err := core.Decode(res.Payload, &out); err != nil {
		return err
	}
	fmt.Printf("matmul %dx%d: trace=%.6f frob^2=%.6f  module time: %dms\n",
		out.N, out.N, out.Trace, out.FrobSq, out.ElapsedMs)
	return nil
}
