package main

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mcsd/internal/core"
	"mcsd/internal/sched"
	"mcsd/internal/smartfam"
)

// TestExitCodeQueueFullRoundTrip walks sched.ErrQueueFull through the
// shape it takes on the wire: the daemon formats the rejection into a
// StatusError record's text, the host recognises that text and re-types
// it with %w, and mcsdctl's classifier must still see the sentinel via
// errors.Is and map it to exit 4.
func TestExitCodeQueueFullRoundTrip(t *testing.T) {
	// Daemon side: the rejection is %w-wrapped, then flattened to record
	// text when it crosses the share.
	wireText := fmt.Errorf("daemon: submit wordcount: %w", sched.ErrQueueFull).Error()
	if !sched.IsQueueFullMessage(wireText) {
		t.Fatalf("wire text %q not recognised as queue-full", wireText)
	}

	// Host side: core re-types the recognised text (runtime.Invoke's
	// mapping) so the sentinel survives end to end.
	err := fmt.Errorf("core: node sd0: %w", sched.ErrQueueFull)
	if !errors.Is(err, sched.ErrQueueFull) {
		t.Fatal("re-typed error lost errors.Is identity")
	}
	if got := exitCode(err); got != exitQueueFull {
		t.Fatalf("exitCode = %d, want %d", got, exitQueueFull)
	}
}

func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"generic", errors.New("boom"), exitFailure},
		{"unreachable", fmt.Errorf("%w: 127.0.0.1:9", errUnreachable), exitUnreachable},
		{"no executor", fmt.Errorf("invoke: %w", core.ErrNoExecutor), exitUnreachable},
		{"module error", fmt.Errorf("invoke: %w",
			&smartfam.ModuleError{Module: "wordcount", Msg: "bad input"}), exitModule},
		{"queue full", fmt.Errorf("core: node sd0: %w", sched.ErrQueueFull), exitQueueFull},
		// Queue-full wins over the module-error wrapper it arrives in:
		// backpressure means retry, not a broken module.
		{"queue full inside module path", fmt.Errorf("invoke: %w: %v",
			sched.ErrQueueFull, &smartfam.ModuleError{Module: "wordcount", Msg: "x"}), exitQueueFull},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("%s: exitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestStderrLineCarriesCode pins the bugfix: classified failures always
// print their exit code and meaning to stderr; unclassified ones stay
// unadorned.
func TestStderrLineCarriesCode(t *testing.T) {
	err := fmt.Errorf("core: node sd0: %w", sched.ErrQueueFull)
	line := stderrLine(err, exitCode(err))
	if !strings.Contains(line, "(exit 4: node busy, retry later)") {
		t.Errorf("queue-full stderr line %q missing exit-code tag", line)
	}
	if !strings.HasPrefix(line, "mcsdctl: ") || !strings.HasSuffix(line, "\n") {
		t.Errorf("stderr line %q not in mcsdctl: ...\\n form", line)
	}

	for code, wantTag := range map[int]string{
		exitUnreachable: "(exit 2: node unreachable)",
		exitModule:      "(exit 3: module failed on the node)",
	} {
		if line := stderrLine(errors.New("x"), code); !strings.Contains(line, wantTag) {
			t.Errorf("stderr line for code %d = %q, want tag %q", code, line, wantTag)
		}
	}

	if line := stderrLine(errors.New("usage"), exitFailure); strings.Contains(line, "exit") {
		t.Errorf("unclassified stderr line %q should not carry a code tag", line)
	}
}
