// Command datagen generates the benchmark input files of the paper's
// evaluation: Zipf-distributed text corpora for word count, "encrypt"
// files with embedded target strings for string match, and the "keys"
// files those targets come from.
//
// Usage:
//
//	datagen -kind text -size 500M -seed 1 -out corpus.txt
//	datagen -kind keys -count 16 -seed 2 -out keys.txt
//	datagen -kind encrypt -size 500M -seed 3 -keys keys.txt -hitrate 0.1 -out enc.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mcsd/internal/units"
	"mcsd/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("datagen: %v", err)
	}
}

func run() error {
	var (
		kind     = flag.String("kind", "text", "text | encrypt | keys | points")
		sizeFlag = flag.String("size", "1M", "output size for text/encrypt")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output file (required)")
		count    = flag.Int("count", 16, "number of keys (kind=keys) or points (kind=points)")
		dim      = flag.Int("dim", 2, "point dimensionality (kind=points)")
		blobs    = flag.Int("blobs", 4, "number of Gaussian blobs (kind=points)")
		keysFile = flag.String("keys", "", "keys file to embed (kind=encrypt)")
		hitRate  = flag.Float64("hitrate", 0.1, "fraction of lines containing a key (kind=encrypt)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	defer w.Flush()

	switch *kind {
	case "text":
		size, err := units.ParseBytes(*sizeFlag)
		if err != nil {
			return err
		}
		n, err := workloads.GenerateText(w, size, *seed)
		if err != nil {
			return err
		}
		log.Printf("datagen: wrote %s of text to %s", units.FormatBytes(n), *out)
	case "keys":
		for _, k := range workloads.GenerateKeys(*count, *seed) {
			fmt.Fprintln(w, k)
		}
		log.Printf("datagen: wrote %d keys to %s", *count, *out)
	case "encrypt":
		size, err := units.ParseBytes(*sizeFlag)
		if err != nil {
			return err
		}
		var keys []string
		if *keysFile != "" {
			data, err := os.ReadFile(*keysFile)
			if err != nil {
				return err
			}
			for _, line := range strings.Split(string(data), "\n") {
				if line = strings.TrimSpace(line); line != "" {
					keys = append(keys, line)
				}
			}
		}
		n, err := workloads.GenerateEncryptFile(w, size, *seed, keys, *hitRate)
		if err != nil {
			return err
		}
		log.Printf("datagen: wrote %s encrypt file to %s (%d keys embedded at %.0f%%)",
			units.FormatBytes(n), *out, len(keys), *hitRate*100)
	case "points":
		pts, _ := workloads.GeneratePoints(*count, *dim, *blobs, *seed)
		enc, _, err := workloads.EncodePoints(pts)
		if err != nil {
			return err
		}
		if _, err := w.Write(enc); err != nil {
			return err
		}
		log.Printf("datagen: wrote %d points (dim %d, %d blobs, %s) to %s",
			*count, *dim, *blobs, units.FormatBytes(int64(len(enc))), *out)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	return w.Flush()
}
