// Command mcsdlint runs the mcsdlint analyzer suite (internal/lint) over
// the module: the machine-checked half of DESIGN.md §5d's "enforced
// invariants". It exits non-zero if any analyzer reports a diagnostic, so
// `make lint` (and the CI lint job) fail on the first violation.
//
// Usage:
//
//	mcsdlint [-run regexp] [-list] [dir]
//
// dir defaults to the current module root (located by walking up to
// go.mod). -run restricts the suite to analyzers whose name matches the
// regexp; -list prints the suite and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"

	"mcsd/internal/lint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "mcsdlint: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mcsdlint", flag.ContinueOnError)
	runPat := fs.String("run", "", "only run analyzers matching this regexp")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	analyzers := lint.All()
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			return fmt.Errorf("bad -run regexp: %w", err)
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("-run %q matches no analyzer", *runPat)
		}
		analyzers = kept
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return nil
	}

	root := "."
	if fs.NArg() > 0 {
		root = fs.Arg(0)
	}
	root, err := moduleRoot(root)
	if err != nil {
		return err
	}
	modPath, err := lint.ModulePath(root)
	if err != nil {
		return err
	}
	pkgs, err := lint.LoadModule(modPath, root)
	if err != nil {
		return err
	}
	diags, err := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if err != nil {
		return err
	}
	if n := len(diags); n > 0 {
		return fmt.Errorf("%d diagnostic(s)", n)
	}
	return nil
}

// moduleRoot walks up from dir to the nearest directory holding a go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}
