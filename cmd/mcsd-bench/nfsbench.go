package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/netsim"
	"mcsd/internal/nfs"
)

// The NFS data-path benchmark runs a real server and real clients over a
// modelled 1 GbE link with propagation delay, so the numbers isolate what
// the wire overhaul bought: tagged pipelining overlaps round trips that the
// serial RPC loop pays one by one, and the host-side block cache takes warm
// reads off the wire entirely.
const (
	nfsBenchFileBytes  = 8 << 20               // sequential-read working set
	nfsBenchCacheBytes = 4 << 20               // block-cache scenario file
	nfsBenchOneWay     = 10 * time.Millisecond // per-direction propagation delay
	nfsBenchRandReads  = 96                    // 64 KiB random reads
	nfsBenchRandSize   = 64 << 10
	nfsBenchAppendLen  = 2 << 20 // bytes appended per append scenario
	nfsBenchAppendUnit = 64 << 10
)

// nfsBenchScenario is one row of the BENCH_nfs.json report.
type nfsBenchScenario struct {
	Name      string  `json:"name"`
	Bytes     int64   `json:"bytes"`
	ElapsedNs int64   `json:"elapsed_ns"`
	MBPerSec  float64 `json:"mb_per_s"`
}

// nfsBenchReport is the BENCH_nfs.json schema. The two headline fields are
// the issue's acceptance gates: pipelined sequential read must be at least
// 2x the serial-RPC loop, and a warm block-cache read must move zero data
// bytes over the wire (delta of the server's nfs.bytes.read counter).
type nfsBenchReport struct {
	GeneratedBy             string             `json:"generated_by"`
	LinkBandwidthBps        float64            `json:"link_bandwidth_bps"`
	LinkOneWayLatencyMs     float64            `json:"link_one_way_latency_ms"`
	FileBytes               int64              `json:"file_bytes"`
	Scenarios               []nfsBenchScenario `json:"scenarios"`
	PipelinedSeqReadSpeedup float64            `json:"pipelined_seqread_speedup"`
	WarmCacheWireReadDelta  int64              `json:"warm_cache_wire_read_delta"`
	Pass                    bool               `json:"pass"`
}

// nfsBenchEnv is one live server plus the modelled link its clients dial
// through: 1 GbE bandwidth both ways, nfsBenchOneWay propagation delay per
// direction (requests on the client conn, responses on the accepted conn).
type nfsBenchEnv struct {
	ctx    context.Context
	cancel context.CancelFunc
	dir    string
	srv    *nfs.Server
	raw    net.Listener
	link   *netsim.Link
	addr   string
}

func newNFSBenchEnv() (*nfsBenchEnv, error) {
	dir, err := os.MkdirTemp("", "mcsd-nfs-bench-")
	if err != nil {
		return nil, err
	}
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &nfsBenchEnv{
		ctx:    ctx,
		cancel: cancel,
		dir:    dir,
		srv:    nfs.NewServer(dir),
		raw:    raw,
		link:   netsim.NewLink(netsim.ProfileGigabitEthernet),
		addr:   raw.Addr().String(),
	}
	go e.srv.Serve(netsim.DelayListener(ctx, raw, nfsBenchOneWay)) //nolint:errcheck // torn down via close()
	return e, nil
}

func (e *nfsBenchEnv) dial() (*nfs.Client, error) {
	raw, err := net.DialTimeout("tcp", e.addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	conn := netsim.Throttle(e.ctx, netsim.Delay(e.ctx, raw, nfsBenchOneWay), e.link.BtoA, e.link.AtoB)
	return nfs.NewClient(conn), nil
}

func (e *nfsBenchEnv) close() {
	e.raw.Close()
	e.srv.Shutdown()
	e.cancel()
	os.RemoveAll(e.dir)
}

// wireReadBytes reads the server-side counter of data bytes served over the
// wire — the warm-cache scenario asserts its delta is zero.
func (e *nfsBenchEnv) wireReadBytes() int64 {
	return e.srv.Metrics().Counter(metrics.NFSBytesRead).Value()
}

// benchPayload builds a deterministic compressible-ish byte pattern.
func benchPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*31 + i>>10)
	}
	return p
}

func runNFSBench(outPath string) error {
	env, err := newNFSBenchEnv()
	if err != nil {
		return err
	}
	defer env.close()

	rep := nfsBenchReport{
		GeneratedBy:         "mcsd-bench -nfs",
		LinkBandwidthBps:    netsim.ProfileGigabitEthernet.BandwidthBps,
		LinkOneWayLatencyMs: float64(nfsBenchOneWay) / float64(time.Millisecond),
		FileBytes:           nfsBenchFileBytes,
	}
	add := func(name string, bytes int64, elapsed time.Duration) {
		row := nfsBenchScenario{Name: name, Bytes: bytes, ElapsedNs: elapsed.Nanoseconds()}
		if elapsed > 0 {
			row.MBPerSec = float64(bytes) / 1e6 / elapsed.Seconds()
		}
		rep.Scenarios = append(rep.Scenarios, row)
		fmt.Printf("  %-28s %10.1f MB/s  (%d bytes in %v)\n", name, row.MBPerSec, bytes, elapsed.Round(time.Millisecond))
	}

	fmt.Printf("NFS data-path benchmarks (1 GbE link, %v one-way latency):\n", nfsBenchOneWay)
	seed := benchPayload(nfsBenchFileBytes)
	if err := os.WriteFile(env.dir+"/seq.dat", seed, 0o644); err != nil {
		return err
	}

	// Sequential read, serial RPCs: window 1 means every chunk fetch waits
	// out a full round trip before the next is sent — the pre-overhaul
	// one-RPC-at-a-time data path.
	serialElapsed, err := timeNFS(env, func(c *nfs.Client) error {
		c.SetWindow(1)
		_, err := c.CopyTo(io.Discard, "seq.dat")
		return err
	})
	if err != nil {
		return fmt.Errorf("seqread/serial: %w", err)
	}
	add("seqread/serial-rpc", nfsBenchFileBytes, serialElapsed)

	// Sequential read, pipelined: the default window plus streaming
	// read-ahead keeps chunks in flight across the latency.
	pipeElapsed, err := timeNFS(env, func(c *nfs.Client) error {
		_, err := c.CopyTo(io.Discard, "seq.dat")
		return err
	})
	if err != nil {
		return fmt.Errorf("seqread/pipelined: %w", err)
	}
	add("seqread/pipelined", nfsBenchFileBytes, pipeElapsed)
	if pipeElapsed > 0 {
		rep.PipelinedSeqReadSpeedup = serialElapsed.Seconds() / pipeElapsed.Seconds()
	}

	// Random reads: 64 KiB at deterministic offsets, eight concurrent
	// readers sharing one pipelined connection.
	rng := rand.New(rand.NewSource(7))
	offsets := make([]int64, nfsBenchRandReads)
	for i := range offsets {
		offsets[i] = rng.Int63n(nfsBenchFileBytes - nfsBenchRandSize)
	}
	randElapsed, err := timeNFS(env, func(c *nfs.Client) error {
		const readers = 8
		var wg sync.WaitGroup
		errs := make(chan error, readers)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				buf := make([]byte, nfsBenchRandSize)
				for i := r; i < len(offsets); i += readers {
					if _, err := c.ReadAt("seq.dat", buf, offsets[i]); err != nil {
						errs <- err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		close(errs)
		return <-errs
	})
	if err != nil {
		return fmt.Errorf("randread: %w", err)
	}
	add("randread/64k-x8", int64(nfsBenchRandReads)*nfsBenchRandSize, randElapsed)

	// Append, serial RPCs: the host-side log-writing pattern, one 64 KiB
	// Append round trip at a time.
	chunk := benchPayload(nfsBenchAppendUnit)
	serialAppend, err := timeNFS(env, func(c *nfs.Client) error {
		for off := 0; off < nfsBenchAppendLen; off += nfsBenchAppendUnit {
			if err := c.Append("app-serial.log", chunk); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("append/serial: %w", err)
	}
	add("append/serial-64k", nfsBenchAppendLen, serialAppend)

	// Append, staged: one multi-chunk Append streams its chunks through the
	// pipeline into a staging file and commits server-side.
	big := benchPayload(nfsBenchAppendLen)
	stagedAppend, err := timeNFS(env, func(c *nfs.Client) error {
		return c.Append("app-staged.log", big)
	})
	if err != nil {
		return fmt.Errorf("append/staged: %w", err)
	}
	add("append/staged-pipelined", nfsBenchAppendLen, stagedAppend)

	// Block cache: a cold read pulls every block over the wire; the warm
	// re-read must be served from host memory — zero data bytes on the wire
	// (the revalidation Stat is metadata only).
	if err := os.WriteFile(env.dir+"/cache.dat", seed[:nfsBenchCacheBytes], 0o644); err != nil {
		return err
	}
	cclient, err := env.dial()
	if err != nil {
		return err
	}
	defer cclient.Close()
	cfs := nfs.NewCachedFS(cclient, nfs.NewBlockCache(nfs.DefaultCacheBytes, nil))
	start := time.Now()
	if _, err := cfs.ReadFile("cache.dat"); err != nil {
		return fmt.Errorf("cache/cold: %w", err)
	}
	add("cacheread/cold", nfsBenchCacheBytes, time.Since(start))
	before := env.wireReadBytes()
	start = time.Now()
	if _, err := cfs.ReadFile("cache.dat"); err != nil {
		return fmt.Errorf("cache/warm: %w", err)
	}
	add("cacheread/warm", nfsBenchCacheBytes, time.Since(start))
	rep.WarmCacheWireReadDelta = env.wireReadBytes() - before

	rep.Pass = rep.PipelinedSeqReadSpeedup >= 2.0 && rep.WarmCacheWireReadDelta == 0
	fmt.Printf("\n  pipelined vs serial seqread:  %.2fx  (gate: >= 2.0x)\n", rep.PipelinedSeqReadSpeedup)
	fmt.Printf("  warm-cache wire data bytes:   %d  (gate: 0)\n", rep.WarmCacheWireReadDelta)
	if rep.Pass {
		fmt.Println("  RESULT: PASS")
	} else {
		fmt.Println("  RESULT: FAIL")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d scenarios)\n", outPath, len(rep.Scenarios))
	if !rep.Pass {
		return fmt.Errorf("nfs bench gates failed (speedup %.2fx, warm delta %d)", rep.PipelinedSeqReadSpeedup, rep.WarmCacheWireReadDelta)
	}
	return nil
}

// timeNFS dials a fresh client, runs fn, and reports its wall time.
func timeNFS(env *nfsBenchEnv, fn func(c *nfs.Client) error) (time.Duration, error) {
	c, err := env.dial()
	if err != nil {
		return 0, err
	}
	defer c.Close()
	start := time.Now()
	if err := fn(c); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
