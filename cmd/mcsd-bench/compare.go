package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Regression tolerances for the bench-compare gate. Throughput rows may
// lose up to 10% MB/s to machine noise before the gate trips; rows without
// a throughput number are held to the same 10% on ns/op instead. Allocation
// counts are far more stable than wall time, but tiny counts (1–2 allocs)
// still jitter by whole units, hence the absolute slack.
const (
	compareSpeedTol    = 0.10
	compareAllocTol    = 0.20
	compareAllocSlackN = 2
)

// compareRow is one matched (name, gomaxprocs) pair across two reports.
type compareRow struct {
	Name       string
	GOMAXPROCS int

	OldNs, NewNs         int64
	OldMB, NewMB         float64
	OldAllocs, NewAllocs int64

	// SpeedDelta is the fractional speed change, positive = faster
	// (MB/s-based when both rows carry it, ns/op-based otherwise).
	SpeedDelta float64
	// AllocDelta is the fractional allocs/op change, positive = more.
	AllocDelta float64

	Fail   bool
	Reason string
}

// rowKey identifies a benchmark row across reports.
type rowKey struct {
	name string
	gmp  int
}

// rowGMP resolves a row's GOMAXPROCS, falling back to the report-level
// value for reports written before rows carried their own (the pre-sweep
// schema), and to 1 when neither is present.
func rowGMP(r engineBenchResult, rep engineBenchReport) int {
	if r.GOMAXPROCS > 0 {
		return r.GOMAXPROCS
	}
	if rep.GOMAXPROCS > 0 {
		return rep.GOMAXPROCS
	}
	return 1
}

// compareReports matches benchmark rows by (name, gomaxprocs) and flags
// regressions beyond the noise tolerances. Rows present in only one report
// are ignored: benchmarks come and go across refactors, and the gate's job
// is to catch the surviving ones getting slower, not to freeze the suite.
// It is pure — no I/O — so the red path is unit-testable.
func compareReports(oldRep, newRep engineBenchReport) []compareRow {
	oldRows := make(map[rowKey]engineBenchResult, len(oldRep.Benchmarks))
	for _, r := range oldRep.Benchmarks {
		oldRows[rowKey{r.Name, rowGMP(r, oldRep)}] = r
	}
	var rows []compareRow
	for _, nr := range newRep.Benchmarks {
		key := rowKey{nr.Name, rowGMP(nr, newRep)}
		or, ok := oldRows[key]
		if !ok {
			continue
		}
		row := compareRow{
			Name:       key.name,
			GOMAXPROCS: key.gmp,
			OldNs:      or.NsPerOp, NewNs: nr.NsPerOp,
			OldMB: or.MBPerSec, NewMB: nr.MBPerSec,
			OldAllocs: or.AllocsPerOp, NewAllocs: nr.AllocsPerOp,
		}
		switch {
		case or.MBPerSec > 0 && nr.MBPerSec > 0:
			row.SpeedDelta = nr.MBPerSec/or.MBPerSec - 1
			if nr.MBPerSec < or.MBPerSec*(1-compareSpeedTol) {
				row.Fail = true
				row.Reason = fmt.Sprintf("throughput fell %.1f%% (%.2f -> %.2f MB/s, tolerance %.0f%%)",
					-100*row.SpeedDelta, or.MBPerSec, nr.MBPerSec, 100*compareSpeedTol)
			}
		case or.NsPerOp > 0:
			row.SpeedDelta = float64(or.NsPerOp)/float64(nr.NsPerOp) - 1
			if float64(nr.NsPerOp) > float64(or.NsPerOp)*(1+compareSpeedTol) {
				row.Fail = true
				row.Reason = fmt.Sprintf("ns/op rose %.1f%% (%d -> %d, tolerance %.0f%%)",
					-100*row.SpeedDelta, or.NsPerOp, nr.NsPerOp, 100*compareSpeedTol)
			}
		}
		if or.AllocsPerOp > 0 {
			row.AllocDelta = float64(nr.AllocsPerOp)/float64(or.AllocsPerOp) - 1
		}
		if float64(nr.AllocsPerOp) > float64(or.AllocsPerOp)*(1+compareAllocTol)+compareAllocSlackN {
			row.Fail = true
			reason := fmt.Sprintf("allocs/op grew %.1f%% (%d -> %d, tolerance %.0f%%)",
				100*row.AllocDelta, or.AllocsPerOp, nr.AllocsPerOp, 100*compareAllocTol)
			if row.Reason != "" {
				row.Reason += "; " + reason
			} else {
				row.Reason = reason
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Name != rows[j].Name {
			return rows[i].Name < rows[j].Name
		}
		return rows[i].GOMAXPROCS < rows[j].GOMAXPROCS
	})
	return rows
}

// runCompare loads two -engine reports and prints a benchstat-style delta
// table, returning an error when any row regressed beyond tolerance — the
// CI bench gate (`make bench-compare`) rides on that exit status.
func runCompare(oldPath, newPath string) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	rows := compareReports(oldRep, newRep)
	if len(rows) == 0 {
		return fmt.Errorf("no benchmark rows in common between %s and %s", oldPath, newPath)
	}

	fmt.Printf("bench-compare: %s (old) vs %s (new), %d matched rows\n", oldPath, newPath, len(rows))
	fmt.Printf("  %-28s %4s  %14s  %14s  %8s  %9s -> %-9s  %s\n",
		"benchmark", "gmp", "old", "new", "speed", "allocs", "allocs", "verdict")
	failures := 0
	for _, r := range rows {
		oldCol := fmt.Sprintf("%d ns/op", r.OldNs)
		newCol := fmt.Sprintf("%d ns/op", r.NewNs)
		if r.OldMB > 0 && r.NewMB > 0 {
			oldCol = fmt.Sprintf("%.2f MB/s", r.OldMB)
			newCol = fmt.Sprintf("%.2f MB/s", r.NewMB)
		}
		verdict := "ok"
		if r.Fail {
			failures++
			verdict = "FAIL: " + r.Reason
		}
		fmt.Printf("  %-28s %4d  %14s  %14s  %+7.1f%%  %9d -> %-9d  %s\n",
			r.Name, r.GOMAXPROCS, oldCol, newCol, 100*r.SpeedDelta,
			r.OldAllocs, r.NewAllocs, verdict)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed beyond tolerance (>%.0f%% speed or >%.0f%% allocs)",
			failures, len(rows), 100*compareSpeedTol, 100*compareAllocTol)
	}
	fmt.Printf("  all %d rows within tolerance\n", len(rows))
	return nil
}

// loadReport reads an -engine JSON report from disk.
func loadReport(path string) (engineBenchReport, error) {
	var rep engineBenchReport
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("parsing %s: %w", path, err)
	}
	return rep, nil
}
