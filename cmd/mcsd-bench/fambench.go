package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/netsim"
	"mcsd/internal/nfs"
	"mcsd/internal/smartfam"
)

// The fam benchmark measures the invocation front door itself: the same
// echo module, the same modelled 1 GbE link with propagation delay, the
// same concurrency — once through the classic append-then-poll path
// (every in-flight call burns round trips statting and re-reading the
// shared log) and once through the fam v2 push path (host group commit,
// server notify lane, daemon loopback push, daemon response batching).
// The acceptance gates come straight from the issue: push throughput at
// least famSpeedupGate times polling, and push p99 latency within
// famP99RTTs round trips.
const (
	famOneWay      = 10 * time.Millisecond // per-direction propagation delay
	famCalls       = 2048                  // measured invocations per scenario
	famConcurrency = 512                   // in-flight callers per scenario
	famWarmup      = 128                   // unmeasured invocations beforehand
	famSpeedupGate = 10.0                  // push ops/s >= gate * polling ops/s
	famP99RTTs     = 3                     // push p99 <= this many round trips
)

// famScenario is one row of the BENCH_fam.json report.
type famScenario struct {
	Name          string  `json:"name"`
	Calls         int     `json:"calls"`
	Concurrency   int     `json:"concurrency"`
	ElapsedNs     int64   `json:"elapsed_ns"`
	OpsPerSec     float64 `json:"ops_per_s"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	WireReadBytes int64   `json:"wire_read_bytes"` // server data bytes read over the wire during the run
	PushEvents    int64   `json:"push_events"`     // host-side notify deliveries (0 in the polling scenario)
	BatchFlushes  int64   `json:"batch_flushes"`   // host request group commits
	BatchRecords  int64   `json:"batch_records"`   // request records those commits carried
	RespFlushes   int64   `json:"resp_flushes"`    // daemon response group commits
}

// famReport is the BENCH_fam.json schema.
type famReport struct {
	GeneratedBy         string        `json:"generated_by"`
	LinkBandwidthBps    float64       `json:"link_bandwidth_bps"`
	LinkOneWayLatencyMs float64       `json:"link_one_way_latency_ms"`
	RTTMs               float64       `json:"rtt_ms"`
	Scenarios           []famScenario `json:"scenarios"`
	PushSpeedup         float64       `json:"push_speedup"`
	PushP99Ms           float64       `json:"push_p99_ms"`
	P99GateMs           float64       `json:"p99_gate_ms"`
	Pass                bool          `json:"pass"`
}

// pollOnlyFS hides the connection's Watch method so the smartfam client
// takes the classic append-then-poll path — the pre-v2 invocation front
// door the push scenario is measured against, on the very same wire.
type pollOnlyFS struct{ smartfam.FS }

// famEnv is one complete testbed: an nfs server over a temp dir, a WAN
// listener whose connections model the 1 GbE host link, and a smartFAM
// daemon. In the push topology the daemon's share I/O loops back through
// a local (undelayed) listener of the same server — the SD-internal path
// — so its response appends raise notifications for host watches. In the
// polling topology the daemon keeps the classic direct-directory share.
type famEnv struct {
	ctx     context.Context
	cancel  context.CancelFunc
	dir     string
	srv     *nfs.Server
	lnWan   net.Listener
	lnLocal net.Listener
	link    *netsim.Link
	dconn   *nfs.Client
	daemon  *smartfam.Daemon
	dcancel context.CancelFunc
	ddone   chan struct{}
}

func newFamEnv(push bool) (*famEnv, error) {
	dir, err := os.MkdirTemp("", "mcsd-fam-bench-")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &famEnv{
		ctx:    ctx,
		cancel: cancel,
		dir:    dir,
		srv:    nfs.NewServer(dir),
		link:   netsim.NewLink(netsim.ProfileGigabitEthernet),
	}
	fail := func(err error) (*famEnv, error) {
		e.close()
		return nil, err
	}
	e.lnWan, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	go e.srv.Serve(netsim.DelayListener(ctx, e.lnWan, famOneWay)) //nolint:errcheck // torn down via close()

	var share smartfam.FS = smartfam.DirFS(dir)
	if push {
		e.lnLocal, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		go e.srv.Serve(e.lnLocal) //nolint:errcheck // torn down via close()
		e.dconn, err = nfs.Dial(e.lnLocal.Addr().String(), 5*time.Second)
		if err != nil {
			return fail(fmt.Errorf("daemon loopback dial: %w", err))
		}
		share = e.dconn
	}
	reg := smartfam.NewRegistry(share)
	echo := smartfam.ModuleFunc{
		ModuleName: "echo",
		Fn: func(_ context.Context, p []byte) ([]byte, error) {
			return p, nil
		},
	}
	if err := reg.Register(echo); err != nil {
		return fail(err)
	}
	opts := []smartfam.DaemonOption{
		smartfam.WithWorkers(8),
		smartfam.WithPollInterval(smartfam.DefaultPollInterval),
	}
	if push {
		opts = append(opts, smartfam.WithResponseBatching(0, 0))
	}
	e.daemon = smartfam.NewDaemon(share, reg, opts...)
	dctx, dcancel := context.WithCancel(ctx)
	e.dcancel = dcancel
	e.ddone = make(chan struct{})
	go func() {
		defer close(e.ddone)
		_ = e.daemon.Run(dctx)
	}()
	return e, nil
}

// hostClient dials one host-side connection through the modelled link and
// wraps it in a smartfam client: push mode keeps the connection's notify
// stream and enables request group commit; polling mode hides Watch so
// the client falls back to the classic poll loop at its default interval.
func (e *famEnv) hostClient(push bool) (*smartfam.Client, *metrics.Registry, error) {
	raw, err := net.DialTimeout("tcp", e.lnWan.Addr().String(), 5*time.Second)
	if err != nil {
		return nil, nil, err
	}
	conn := nfs.NewClient(netsim.Throttle(e.ctx, netsim.Delay(e.ctx, raw, famOneWay), e.link.BtoA, e.link.AtoB))
	var share smartfam.FS = conn
	if !push {
		share = pollOnlyFS{conn}
	}
	hc := smartfam.NewClient(share, smartfam.DefaultPollInterval)
	if push {
		hc.SetBatching(0, 0) // defaults: group commit on
	}
	hm := metrics.NewRegistry()
	hc.SetMetrics(hm)
	return hc, hm, nil
}

func (e *famEnv) close() {
	if e.dcancel != nil {
		e.dcancel()
		<-e.ddone
	}
	if e.dconn != nil {
		e.dconn.Close()
	}
	if e.lnWan != nil {
		e.lnWan.Close()
	}
	if e.lnLocal != nil {
		e.lnLocal.Close()
	}
	e.srv.Shutdown()
	e.cancel()
	os.RemoveAll(e.dir)
}

// famDrive fires calls echo invocations from conc concurrent workers and
// returns the per-call latencies plus the wall time for the whole run.
func famDrive(hc *smartfam.Client, calls, conc int) ([]time.Duration, time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if conc > calls {
		conc = calls
	}
	idx := make(chan int, calls)
	for i := 0; i < calls; i++ {
		idx <- i
	}
	close(idx)
	lat := make([]time.Duration, calls)
	errs := make(chan error, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				want := fmt.Sprintf("fam-call-%06d", i)
				t0 := time.Now()
				out, err := hc.Invoke(ctx, "echo", []byte(want))
				lat[i] = time.Since(t0)
				if err != nil {
					errs <- fmt.Errorf("call %d: %w", i, err)
					return
				}
				if string(out) != want {
					errs <- fmt.Errorf("call %d: echoed %q", i, out)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return nil, 0, err
	}
	return lat, elapsed, nil
}

// famPercentile reads the q-quantile (0..1) from sorted latencies.
func famPercentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// runFamScenario runs one full measurement: fresh testbed, warmup,
// famCalls timed invocations, then the metric deltas that prove which
// path carried the load.
func runFamScenario(name string, push bool) (famScenario, error) {
	row := famScenario{Name: name, Calls: famCalls, Concurrency: famConcurrency}
	env, err := newFamEnv(push)
	if err != nil {
		return row, err
	}
	defer env.close()
	hc, hm, err := env.hostClient(push)
	if err != nil {
		return row, err
	}
	if _, _, err := famDrive(hc, famWarmup, famConcurrency); err != nil {
		return row, fmt.Errorf("%s: warmup: %w", name, err)
	}
	readBefore := env.srv.Metrics().Counter(metrics.NFSBytesRead).Value()
	lat, elapsed, err := famDrive(hc, famCalls, famConcurrency)
	if err != nil {
		return row, fmt.Errorf("%s: %w", name, err)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	row.ElapsedNs = elapsed.Nanoseconds()
	if elapsed > 0 {
		row.OpsPerSec = float64(famCalls) / elapsed.Seconds()
	}
	row.P50Ms = float64(famPercentile(lat, 0.50)) / float64(time.Millisecond)
	row.P99Ms = float64(famPercentile(lat, 0.99)) / float64(time.Millisecond)
	row.WireReadBytes = env.srv.Metrics().Counter(metrics.NFSBytesRead).Value() - readBefore
	row.PushEvents = hm.Counter(metrics.FamPushEvents).Value()
	row.BatchFlushes = hm.Counter(metrics.FamBatchFlushes).Value()
	row.BatchRecords = hm.Counter(metrics.FamBatchRecords).Value()
	row.RespFlushes = env.daemon.Metrics().Counter(metrics.FamRespFlushes).Value()

	// Honesty checks: the push scenario must actually have been carried by
	// the notify stream, and the polling scenario must never have seen it.
	if push && row.PushEvents == 0 {
		return row, fmt.Errorf("%s: the polling fallback carried the load (zero push events)", name)
	}
	if !push && row.PushEvents != 0 {
		return row, fmt.Errorf("%s: %d push events leaked into the polling baseline", name, row.PushEvents)
	}
	return row, nil
}

func runFamBench(outPath string) error {
	rtt := 2 * famOneWay
	fmt.Printf("smartFAM invocation front-door benchmark (1 GbE link, %v one-way latency, %d callers):\n",
		famOneWay, famConcurrency)
	rep := famReport{
		GeneratedBy:         "mcsd-bench -fam",
		LinkBandwidthBps:    netsim.ProfileGigabitEthernet.BandwidthBps,
		LinkOneWayLatencyMs: float64(famOneWay) / float64(time.Millisecond),
		RTTMs:               float64(rtt) / float64(time.Millisecond),
		P99GateMs:           float64(famP99RTTs*rtt) / float64(time.Millisecond),
	}
	show := func(row famScenario) {
		fmt.Printf("  %-22s %8.0f ops/s  p50 %6.1f ms  p99 %6.1f ms  (%d calls in %v, %d wire read bytes)\n",
			row.Name, row.OpsPerSec, row.P50Ms, row.P99Ms,
			row.Calls, time.Duration(row.ElapsedNs).Round(time.Millisecond), row.WireReadBytes)
	}

	poll, err := runFamScenario("invoke/poll", false)
	if err != nil {
		return err
	}
	show(poll)
	push, err := runFamScenario("invoke/push-batch", true)
	if err != nil {
		return err
	}
	show(push)
	rep.Scenarios = []famScenario{poll, push}
	if poll.OpsPerSec > 0 {
		rep.PushSpeedup = push.OpsPerSec / poll.OpsPerSec
	}
	rep.PushP99Ms = push.P99Ms
	rep.Pass = rep.PushSpeedup >= famSpeedupGate && rep.PushP99Ms <= rep.P99GateMs

	fmt.Printf("\n  push vs polling throughput:  %.1fx  (gate: >= %.0fx)\n", rep.PushSpeedup, famSpeedupGate)
	fmt.Printf("  push p99 latency:            %.1f ms  (gate: <= %.0f ms = %dxRTT)\n",
		rep.PushP99Ms, rep.P99GateMs, famP99RTTs)
	if rep.Pass {
		fmt.Println("  RESULT: PASS")
	} else {
		fmt.Println("  RESULT: FAIL")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d scenarios)\n", outPath, len(rep.Scenarios))
	if !rep.Pass {
		return fmt.Errorf("fam bench gates failed (speedup %.1fx, p99 %.1f ms)", rep.PushSpeedup, rep.PushP99Ms)
	}
	return nil
}
