package main

import (
	"strings"
	"testing"
)

func benchRow(name string, gmp int, ns, allocs int64, mbps float64) engineBenchResult {
	return engineBenchResult{
		Name: name, GOMAXPROCS: gmp,
		NsPerOp: ns, AllocsPerOp: allocs, MBPerSec: mbps,
	}
}

func baselineReport() engineBenchReport {
	return engineBenchReport{
		GOMAXPROCS: 1,
		Benchmarks: []engineBenchResult{
			benchRow("wordcount/with-combine", 1, 50_000_000, 60_000, 80.0),
			benchRow("wordcount/with-combine", 4, 47_000_000, 61_000, 89.0),
			benchRow("merge/loser-tree/k=64", 1, 24_000_000, 2, 0),
		},
	}
}

func TestCompareReportsIdenticalPasses(t *testing.T) {
	rows := compareReports(baselineReport(), baselineReport())
	if len(rows) != 3 {
		t.Fatalf("matched %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Fail {
			t.Fatalf("identical reports flagged a regression: %s gmp=%d: %s",
				r.Name, r.GOMAXPROCS, r.Reason)
		}
	}
}

// Injected regressions must turn the gate red: a throughput drop beyond
// 10%, an allocation blow-up beyond 20%, and an ns/op rise on a row with
// no MB/s figure each trip their own check.
func TestCompareReportsInjectedRegressionFails(t *testing.T) {
	old := baselineReport()
	bad := baselineReport()
	bad.Benchmarks[0].MBPerSec = 80.0 * 0.7        // -30% throughput
	bad.Benchmarks[1].AllocsPerOp = 61_000 * 2     // 2x allocs
	bad.Benchmarks[2].NsPerOp = 24_000_000 * 3 / 2 // +50% ns/op
	rows := compareReports(old, bad)
	if len(rows) != 3 {
		t.Fatalf("matched %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Fail {
			t.Fatalf("%s gmp=%d: injected regression not flagged (speed %+.1f%%, allocs %+.1f%%)",
				r.Name, r.GOMAXPROCS, 100*r.SpeedDelta, 100*r.AllocDelta)
		}
	}
	var throughput, allocs, nsop bool
	for _, r := range rows {
		switch {
		case strings.Contains(r.Reason, "throughput fell"):
			throughput = true
		case strings.Contains(r.Reason, "allocs/op grew"):
			allocs = true
		case strings.Contains(r.Reason, "ns/op rose"):
			nsop = true
		}
	}
	if !throughput || !allocs || !nsop {
		t.Fatalf("missing failure kinds: throughput=%v allocs=%v nsop=%v", throughput, allocs, nsop)
	}
}

func TestCompareReportsWithinTolerancePasses(t *testing.T) {
	old := baselineReport()
	noisy := baselineReport()
	noisy.Benchmarks[0].MBPerSec = 80.0 * 0.93 // -7%: inside the 10% band
	noisy.Benchmarks[1].AllocsPerOp = 61_000 * 115 / 100
	noisy.Benchmarks[2].NsPerOp = 24_000_000 * 105 / 100
	for _, r := range compareReports(old, noisy) {
		if r.Fail {
			t.Fatalf("%s gmp=%d: within-tolerance noise flagged: %s", r.Name, r.GOMAXPROCS, r.Reason)
		}
	}
}

func TestCompareReportsImprovementPasses(t *testing.T) {
	old := baselineReport()
	better := baselineReport()
	better.Benchmarks[0].MBPerSec = 160.0
	better.Benchmarks[1].AllocsPerOp = 100
	better.Benchmarks[2].NsPerOp = 1_000_000
	for _, r := range compareReports(old, better) {
		if r.Fail {
			t.Fatalf("%s gmp=%d: improvement flagged as regression: %s", r.Name, r.GOMAXPROCS, r.Reason)
		}
	}
}

// Pre-sweep reports carried gomaxprocs only at the top level; their rows
// must match new per-row gomaxprocs entries via the report-level fallback.
func TestCompareReportsOldSchemaFallback(t *testing.T) {
	old := engineBenchReport{
		GOMAXPROCS: 1,
		Benchmarks: []engineBenchResult{
			{Name: "wordcount/with-combine", NsPerOp: 114_485_897, AllocsPerOp: 826_998, MBPerSec: 36.636},
		},
	}
	improved := engineBenchReport{
		GOMAXPROCS: 1,
		Benchmarks: []engineBenchResult{
			benchRow("wordcount/with-combine", 1, 50_000_000, 60_000, 83.0),
			benchRow("wordcount/with-combine", 4, 47_000_000, 61_000, 89.0),
		},
	}
	rows := compareReports(old, improved)
	if len(rows) != 1 {
		t.Fatalf("matched %d rows, want 1 (old gmp=1 row vs new gmp=1 row only)", len(rows))
	}
	r := rows[0]
	if r.GOMAXPROCS != 1 || r.Fail {
		t.Fatalf("fallback row: gmp=%d fail=%v reason=%q", r.GOMAXPROCS, r.Fail, r.Reason)
	}
	if r.SpeedDelta < 1.0 {
		t.Fatalf("SpeedDelta = %+.2f, want > +100%% for 36.6 -> 83 MB/s", r.SpeedDelta)
	}
}

// Rows that exist in only one report are skipped, not failed — suites
// evolve; only surviving benchmarks are gated.
func TestCompareReportsUnmatchedRowsSkipped(t *testing.T) {
	old := engineBenchReport{Benchmarks: []engineBenchResult{
		benchRow("partition/pipelined-driver", 1, 90_000_000, 1000, 44.0),
	}}
	now := engineBenchReport{Benchmarks: []engineBenchResult{
		benchRow("partition/parallel-driver", 1, 88_000_000, 900, 46.0),
	}}
	if rows := compareReports(old, now); len(rows) != 0 {
		t.Fatalf("matched %d rows across disjoint suites, want 0", len(rows))
	}
}
