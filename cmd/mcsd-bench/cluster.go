package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"mcsd/internal/cluster"
	"mcsd/internal/core"
	"mcsd/internal/fleet"
	"mcsd/internal/netsim"
	"mcsd/internal/nfs"
	"mcsd/internal/sim"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

// The cluster benchmark measures multi-SD scale-out with the real stack:
// each simulated SD node is a full smartFAM daemon + file-service export,
// reading its assigned byte ranges of one shared corpus through a private
// bandwidth-limited self-mount that stands in for its local SATA disk. The
// host's fleet coordinator scatters word-count fragments over the nodes'
// shares (all dialed through one shared 1 GbE link — the host's single NIC)
// and merges the sorted per-node runs. Because each node's "disk" paces
// independently, aggregate scan bandwidth grows with the node count and the
// job is disk-bound at the gated node counts — the regime the paper's §VI
// multi-SD sketch targets.
const (
	clusterCorpusBytes = 8 << 20 // shared corpus striped across the fleet
	clusterFragments   = 48      // scatter granularity (6 per node at N=8)
	// clusterDiskBps models each node's local sequential-scan bandwidth.
	// It is set well below what one core pushes through the whole stack
	// (engine + file service + pacing) so the gated runs (N=2, N=4) stay
	// disk-bound even when every node shares a single benchmark CPU: node
	// counts then add scan bandwidth, which is the point of the test.
	clusterDiskBps = 2e6
	clusterMaxSDs  = 8
	// clusterModelBytes sizes the analytic cross-check: SimulateMultiSD at
	// 1 GB, the paper-scale run the measured topology miniaturizes.
	clusterModelBytes = 1 << 30
)

// clusterRun is one row of the BENCH_cluster.json report.
type clusterRun struct {
	Nodes     int     `json:"nodes"`
	ElapsedNs int64   `json:"elapsed_ns"`
	MBPerSec  float64 `json:"mb_per_s"`
	// Speedup is this run's elapsed vs the N=1 run of the same corpus.
	Speedup float64 `json:"speedup"`
	// ModelSpeedup is sim.MultiSDSpeedup for the same node count at
	// paper scale — the analytic reference the measurement is read against.
	ModelSpeedup float64 `json:"model_speedup"`
	Fragments    int     `json:"fragments"`
	Stragglers   int     `json:"stragglers"`
	DupResults   int     `json:"dup_results"`
	QueueSteals  int     `json:"queue_steals"`
	NodeFailures int     `json:"node_failures"`
	// OutputIdentical is true when the merged result is byte-identical to
	// the N=1 run's canonical output.
	OutputIdentical bool           `json:"output_identical"`
	PerNode         map[string]int `json:"per_node"`
}

// clusterReport is the BENCH_cluster.json schema. The acceptance gates are
// near-linear scale-out at the gated node counts with byte-identical merged
// output at every node count.
type clusterReport struct {
	GeneratedBy    string       `json:"generated_by"`
	CorpusBytes    int64        `json:"corpus_bytes"`
	FragmentBytes  int64        `json:"fragment_bytes"`
	DiskBpsPerNode float64      `json:"disk_bps_per_node"`
	HostLinkBps    float64      `json:"host_link_bps"`
	Runs           []clusterRun `json:"runs"`
	// Replicated is the R=2 sealed-object run: same corpus, two
	// CRC-trailed copies of every fragment object, dispatch pinned to the
	// holders. Its gate is byte-identity with the plain N=1 output.
	Replicated *replicatedRun `json:"replicated,omitempty"`
	N2Speedup  float64        `json:"n2_speedup"`
	N4Speedup  float64        `json:"n4_speedup"`
	N8Speedup  float64        `json:"n8_speedup"`
	Pass       bool           `json:"pass"`
}

// replicatedRun is the report row for the replicated word count: how much
// the durability tier costs over the plain scatter at the same node count.
type replicatedRun struct {
	Nodes     int     `json:"nodes"`
	R         int     `json:"r"`
	ElapsedNs int64   `json:"elapsed_ns"`
	MBPerSec  float64 `json:"mb_per_s"`
	// OverheadVsPlain is elapsed/plain_elapsed - 1 at the same node count:
	// the fractional cost of CRC verification plus holder-pinned dispatch.
	OverheadVsPlain float64 `json:"overhead_vs_plain"`
	ReadRepairs     int     `json:"read_repairs"`
	CorruptReplicas int     `json:"corrupt_replicas"`
	OutputIdentical bool    `json:"output_identical"`
	Fragments       int     `json:"fragments"`
}

// clusterSD is one in-process SD node: an exported data directory, a
// smartFAM daemon whose modules read through a throttled self-mount (the
// modelled local disk), and the host-side session over the shared host link.
type clusterSD struct {
	name    string
	dir     string
	session *smartfam.Client
	// mount is the host-side view of the node's share (over the shared
	// host link) — what the replicated store writes fragment objects
	// through.
	mount smartfam.FS
	close func()
}

// startClusterSD boots one SD node and mounts it from the host.
func startClusterSD(ctx context.Context, name string, corpus []byte, hostLink *netsim.Link) (*clusterSD, error) {
	dir, err := os.MkdirTemp("", "mcsd-cluster-"+name+"-")
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*clusterSD, error) {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("cluster node %s: %w", name, err)
	}
	if err := os.MkdirAll(dir+"/data", 0o755); err != nil {
		return fail(err)
	}
	// Staging, not benching: the corpus lands on the node's local disk
	// before the clock starts, as it would in the paper's testbed.
	if err := os.WriteFile(dir+"/data/corpus.txt", corpus, 0o644); err != nil {
		return fail(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	srv := nfs.NewServer(dir)
	go srv.Serve(ln) //nolint:errcheck // torn down via close()

	nodeCtx, cancel := context.WithCancel(ctx)
	stop := func() {
		cancel()
		ln.Close()
		srv.Shutdown()
		os.RemoveAll(dir)
	}

	// The node's "local SATA disk": its own export dialed through a private
	// clusterDiskBps link, so every node's scan paces independently.
	diskLink := netsim.NewLink(netsim.Profile{Name: "sata-sim", BandwidthBps: clusterDiskBps})
	disk, err := nfs.DialThrottled(nodeCtx, ln.Addr().String(), 5*time.Second, diskLink)
	if err != nil {
		stop()
		return fail(err)
	}
	share := smartfam.DirFS(dir)
	reg := smartfam.NewRegistry(share)
	for _, m := range core.StandardModules(core.ModuleConfig{Store: core.RemoteDataStore(disk), Workers: 1}) {
		if err := reg.Register(m); err != nil {
			stop()
			return fail(err)
		}
	}
	daemon := smartfam.NewDaemon(share, reg, smartfam.WithPollInterval(time.Millisecond), smartfam.WithWorkers(2))
	go daemon.Run(nodeCtx) //nolint:errcheck // torn down via close()

	// Host side: the node's share over the one shared host link.
	mount, err := nfs.DialThrottled(nodeCtx, ln.Addr().String(), 5*time.Second, hostLink)
	if err != nil {
		stop()
		return fail(err)
	}
	closeAll := func() {
		mount.Close()
		disk.Close()
		stop()
	}
	return &clusterSD{
		name:    name,
		dir:     dir,
		session: smartfam.NewClient(mount, time.Millisecond),
		mount:   mount,
		close:   closeAll,
	}, nil
}

func runClusterBench(outPath string) error {
	ctx := context.Background()
	corpus := workloads.GenerateTextBytes(clusterCorpusBytes, 29)
	fragmentBytes := int64((len(corpus) + clusterFragments - 1) / clusterFragments)
	hostLink := netsim.NewLink(netsim.ProfileGigabitEthernet)

	fmt.Printf("Multi-SD cluster benchmark (%d MiB corpus, %d fragments, %.0f MB/s disk per node):\n",
		clusterCorpusBytes>>20, clusterFragments, clusterDiskBps/1e6)

	sds := make([]*clusterSD, clusterMaxSDs)
	for i := range sds {
		sd, err := startClusterSD(ctx, fmt.Sprintf("sd%d", i), corpus, hostLink)
		if err != nil {
			for _, s := range sds[:i] {
				s.close()
			}
			return err
		}
		sds[i] = sd
	}
	defer func() {
		for _, sd := range sds {
			sd.close()
		}
	}()

	rep := clusterReport{
		GeneratedBy:    "mcsd-bench -cluster",
		CorpusBytes:    int64(len(corpus)),
		FragmentBytes:  fragmentBytes,
		DiskBpsPerNode: clusterDiskBps,
		HostLinkBps:    netsim.ProfileGigabitEthernet.BandwidthBps,
	}

	refCounts := workloads.WordCountSeq(corpus)
	var baseline, plainN4 time.Duration
	var canonical []byte
	identicalAll := true
	for _, n := range []int{1, 2, 4, 8} {
		nodes := make([]fleet.Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = fleet.Node{Name: sds[i].name, Session: sds[i].session}
		}
		coord := fleet.NewCoordinator(nodes, fleet.Config{AttemptTimeout: 60 * time.Second})

		start := time.Now()
		res, err := coord.WordCount(ctx, fleet.WordCountJob{
			DataFile:      "data/corpus.txt",
			TotalBytes:    int64(len(corpus)),
			FragmentBytes: fragmentBytes,
		})
		if err != nil {
			return fmt.Errorf("cluster n=%d: %w", n, err)
		}
		elapsed := time.Since(start)

		// Correctness before speed: the merged table must match a direct
		// sequential count, and every N must produce the N=1 bytes.
		if res.Output.UniqueWords != len(refCounts) {
			return fmt.Errorf("cluster n=%d: %d unique words, want %d", n, res.Output.UniqueWords, len(refCounts))
		}
		got := fleet.CanonicalWordCount(&res.Output)
		if canonical == nil {
			baseline, canonical = elapsed, got
		}
		identical := bytes.Equal(got, canonical)
		identicalAll = identicalAll && identical

		model, err := sim.MultiSDSpeedup(sim.PairConfig{
			Cluster:   cluster.TableIWithSDs(n),
			DataCost:  workloads.WordCountCost(),
			DataBytes: clusterModelBytes,
		}, n)
		if err != nil {
			return fmt.Errorf("cluster n=%d: model cross-check: %w", n, err)
		}

		run := clusterRun{
			Nodes:           n,
			ElapsedNs:       elapsed.Nanoseconds(),
			MBPerSec:        float64(len(corpus)) / 1e6 / elapsed.Seconds(),
			Speedup:         baseline.Seconds() / elapsed.Seconds(),
			ModelSpeedup:    model,
			Fragments:       len(res.Fragments),
			Stragglers:      res.Stats.Speculations,
			DupResults:      res.Stats.DupResults,
			QueueSteals:     res.Stats.QueueSteals,
			NodeFailures:    res.Stats.NodeFailures,
			OutputIdentical: identical,
			PerNode:         res.Stats.PerNode,
		}
		rep.Runs = append(rep.Runs, run)
		switch n {
		case 2:
			rep.N2Speedup = run.Speedup
		case 4:
			rep.N4Speedup = run.Speedup
			plainN4 = elapsed
		case 8:
			rep.N8Speedup = run.Speedup
		}
		fmt.Printf("  n=%d %8.1f MB/s  %6.2fx measured  %5.2fx model  (%v, identical=%v)\n",
			n, run.MBPerSec, run.Speedup, run.ModelSpeedup, elapsed.Round(time.Millisecond), identical)
	}

	// Replicated R=2 run at n=4: the corpus is re-staged as sealed fragment
	// objects, two copies each, placed by the HRW ring; every dispatch is
	// pinned to an object's holders and every node-side read is
	// CRC-verified. Staging happens before the clock starts, like the plain
	// runs' corpus staging.
	{
		const rn, rfactor = 4, 2
		shares := make(map[string]smartfam.FS, rn)
		nodes := make([]fleet.Node, rn)
		for i := 0; i < rn; i++ {
			shares[sds[i].name] = sds[i].mount
			nodes[i] = fleet.Node{Name: sds[i].name, Session: sds[i].session}
		}
		store := fleet.NewStore(shares, rfactor, nil)
		set, err := store.PutFile(ctx, "corpus", corpus, int(fragmentBytes))
		if err != nil {
			return fmt.Errorf("cluster replicated: staging: %w", err)
		}
		coord := fleet.NewCoordinator(nodes, fleet.Config{AttemptTimeout: 60 * time.Second, Store: store})
		start := time.Now()
		res, err := coord.WordCountSealed(ctx, fleet.SealedWordCountJob{Set: set})
		if err != nil {
			return fmt.Errorf("cluster replicated n=%d: %w", rn, err)
		}
		elapsed := time.Since(start)
		identical := bytes.Equal(fleet.CanonicalWordCount(&res.Output), canonical)
		identicalAll = identicalAll && identical
		rep.Replicated = &replicatedRun{
			Nodes:           rn,
			R:               rfactor,
			ElapsedNs:       elapsed.Nanoseconds(),
			MBPerSec:        float64(len(corpus)) / 1e6 / elapsed.Seconds(),
			OverheadVsPlain: elapsed.Seconds()/plainN4.Seconds() - 1,
			ReadRepairs:     res.Stats.ReadRepairs,
			CorruptReplicas: res.Stats.CorruptReplicas,
			OutputIdentical: identical,
			Fragments:       len(res.Fragments),
		}
		fmt.Printf("  n=%d R=%d %5.1f MB/s  %+5.1f%% vs plain  (%v, identical=%v, %d fragments)\n",
			rn, rfactor, rep.Replicated.MBPerSec, rep.Replicated.OverheadVsPlain*100,
			elapsed.Round(time.Millisecond), identical, rep.Replicated.Fragments)
	}

	rep.Pass = rep.N2Speedup >= 1.7 && rep.N4Speedup >= 3.0 && identicalAll
	fmt.Printf("\n  n=2 speedup: %.2fx  (gate: >= 1.7x)\n", rep.N2Speedup)
	fmt.Printf("  n=4 speedup: %.2fx  (gate: >= 3.0x)\n", rep.N4Speedup)
	fmt.Printf("  n=8 speedup: %.2fx  (reported, ungated)\n", rep.N8Speedup)
	fmt.Printf("  merged output identical at every N: %v  (gate: true)\n", identicalAll)
	if rep.Pass {
		fmt.Println("  RESULT: PASS")
	} else {
		fmt.Println("  RESULT: FAIL")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d runs)\n", outPath, len(rep.Runs))
	if !rep.Pass {
		return fmt.Errorf("cluster bench gates failed (n2 %.2fx, n4 %.2fx, identical %v)", rep.N2Speedup, rep.N4Speedup, identicalAll)
	}
	return nil
}
