// Command mcsd-bench regenerates every table and figure of the paper's
// evaluation section from the performance model, printing the same rows
// and series the paper reports.
//
// Usage:
//
//	mcsd-bench            # everything
//	mcsd-bench -fig9      # just Fig. 9
//	mcsd-bench -claims    # the quantitative prose claims with PASS/FAIL
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"mcsd/internal/experiments"
	"mcsd/internal/metrics"
	"mcsd/internal/sim"
	"mcsd/internal/workloads"
)

// outDir, when non-empty, receives one CSV file per emitted artifact.
var outDir string

// emitCSV writes content to <outDir>/<name>.csv when -csv is set.
func emitCSV(name, content string) error {
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, name)
	return os.WriteFile(filepath.Join(outDir, slug+".csv"), []byte(content), 0o644)
}

// emitFigure prints a figure and mirrors it to CSV.
func emitFigure(fig *metrics.Figure) error {
	if _, err := fig.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return emitCSV(fig.Title, fig.CSV())
}

func main() {
	var (
		table1  = flag.Bool("table1", false, "Table I: cluster configuration")
		fig8a   = flag.Bool("fig8a", false, "Fig. 8(a): single-application speedups")
		fig8b   = flag.Bool("fig8b", false, "Fig. 8(b): WC growth curves")
		fig8c   = flag.Bool("fig8c", false, "Fig. 8(c): SM growth curves")
		fig9    = flag.Bool("fig9", false, "Fig. 9: MM/WC pair speedups")
		fig10   = flag.Bool("fig10", false, "Fig. 10: MM/SM pair speedups")
		claims  = flag.Bool("claims", false, "quantitative prose claims (PASS/FAIL)")
		ext     = flag.Bool("ext", false, "extension studies: multi-SD, interconnect, SMB sweep")
		scale   = flag.Bool("scale", false, "measured scale model: real engine + throttled TCP (slow; excluded from default)")
		calib   = flag.Bool("calibrate", false, "measure the real engine on this machine and print the model scale factor")
		engine  = flag.Bool("engine", false, "engine hot-path benchmarks: combine/merge/pipeline before-vs-after (slow; excluded from default)")
		engOut  = flag.String("engine-out", "BENCH_mapreduce.json", "where -engine writes its JSON report")
		nfsb    = flag.Bool("nfs", false, "NFS data-path benchmarks: pipelined vs serial, block cache warm/cold over a modelled 1 GbE link (slow; excluded from default)")
		nfsOut  = flag.String("nfs-out", "BENCH_nfs.json", "where -nfs writes its JSON report")
		clus    = flag.Bool("cluster", false, "multi-SD scale-out benchmark: fleet word count at N=1/2/4/8 in-process SD nodes over modelled links (slow; excluded from default)")
		clusOut = flag.String("cluster-out", "BENCH_cluster.json", "where -cluster writes its JSON report")
		famb    = flag.Bool("fam", false, "smartFAM invocation front-door benchmark: push+group-commit vs polling over a modelled 1 GbE link (slow; excluded from default)")
		famOut  = flag.String("fam-out", "BENCH_fam.json", "where -fam writes its JSON report")
		csvDir  = flag.String("csv", "", "also write each table/figure as CSV into this directory")
		compare = flag.Bool("compare", false, "compare two -engine reports: mcsd-bench -compare old.json new.json (exits non-zero on regression)")
	)
	flag.Parse()
	outDir = *csvDir
	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("mcsd-bench: -compare needs exactly two arguments: old.json new.json")
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1)); err != nil {
			log.Fatalf("mcsd-bench: compare: %v", err)
		}
		return
	}
	all := !(*table1 || *fig8a || *fig8b || *fig8c || *fig9 || *fig10 || *claims || *ext || *scale || *calib || *engine || *nfsb || *clus || *famb)

	if err := run(all, *table1, *fig8a, *fig8b, *fig8c, *fig9, *fig10, *claims, *ext); err != nil {
		log.Fatalf("mcsd-bench: %v", err)
	}
	if *scale {
		if err := runScale(); err != nil {
			log.Fatalf("mcsd-bench: scale model: %v", err)
		}
	}
	if *calib {
		if err := runCalibrate(); err != nil {
			log.Fatalf("mcsd-bench: calibration: %v", err)
		}
	}
	if *engine {
		if err := runEngineBench(*engOut); err != nil {
			log.Fatalf("mcsd-bench: engine benchmarks: %v", err)
		}
	}
	if *nfsb {
		if err := runNFSBench(*nfsOut); err != nil {
			log.Fatalf("mcsd-bench: nfs benchmarks: %v", err)
		}
	}
	if *clus {
		if err := runClusterBench(*clusOut); err != nil {
			log.Fatalf("mcsd-bench: cluster benchmarks: %v", err)
		}
	}
	if *famb {
		if err := runFamBench(*famOut); err != nil {
			log.Fatalf("mcsd-bench: fam benchmarks: %v", err)
		}
	}
}

// runCalibrate anchors the simulator's absolute scale to this machine.
func runCalibrate() error {
	cal, err := sim.CalibrateFromEngine(context.Background(), 8<<20)
	if err != nil {
		return err
	}
	fmt.Println("Engine calibration (this machine, single worker):")
	fmt.Printf("  word count:   %6.1f MB/s  (Table I reference core: %.1f MB/s)\n",
		cal.MeasuredWordCountBps/1e6, workloads.WordCountCost().MapRateBps/1e6)
	fmt.Printf("  string match: %6.1f MB/s  (Table I reference core: %.1f MB/s)\n",
		cal.MeasuredStringMatchBps/1e6, workloads.StringMatchCost().MapRateBps/1e6)
	fmt.Printf("  scale factor: %.2fx — this machine's core vs a 2.0 GHz Core2 core\n", cal.Scale)
	fmt.Println("  (multiply any reference MapRateBps by the factor to model this machine)")
	return nil
}

// runScale executes the measured scale model on the real engine.
func runScale() error {
	fmt.Println("Running the measured scale model (real engine over a throttled link)...")
	res, err := experiments.RunScaleModel(context.Background(), experiments.DefaultScaleModelConfig())
	if err != nil {
		return err
	}
	if err := emitFigure(res.Elapsed); err != nil {
		return err
	}
	return emitFigure(res.Speedup)
}

func run(all, table1, fig8a, fig8b, fig8c, fig9, fig10, claims, ext bool) error {
	if all || table1 {
		tbl := experiments.Table1()
		if _, err := tbl.WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if err := emitCSV(tbl.Title, tbl.CSV()); err != nil {
			return err
		}
	}
	figFns := []struct {
		on bool
		fn func() (*metrics.Figure, error)
	}{
		{all || fig8a, experiments.Fig8a},
		{all || fig8b, experiments.Fig8b},
		{all || fig8c, experiments.Fig8c},
	}
	for _, f := range figFns {
		if !f.on {
			continue
		}
		fig, err := f.fn()
		if err != nil {
			return err
		}
		if err := emitFigure(fig); err != nil {
			return err
		}
	}
	multiFns := []struct {
		on bool
		fn func() ([]*metrics.Figure, error)
	}{
		{all || fig9, experiments.Fig9},
		{all || fig10, experiments.Fig10},
	}
	for _, f := range multiFns {
		if !f.on {
			continue
		}
		figs, err := f.fn()
		if err != nil {
			return err
		}
		for _, fig := range figs {
			if err := emitFigure(fig); err != nil {
				return err
			}
		}
	}
	if all || ext {
		for _, fn := range []func() (*metrics.Figure, error){
			experiments.FigMultiSD, experiments.FigInterconnect,
			experiments.FigSMBSweep, experiments.FigOffloadEconomics,
		} {
			fig, err := fn()
			if err != nil {
				return err
			}
			if err := emitFigure(fig); err != nil {
				return err
			}
		}
		fmt.Printf("(interconnect x axis: 0=%s 1=%s 2=%s)\n\n",
			experiments.InterconnectProfileNames[0],
			experiments.InterconnectProfileNames[1],
			experiments.InterconnectProfileNames[2])
	}
	if all || claims {
		lines, err := experiments.Claims()
		if err != nil {
			return err
		}
		fmt.Println("Quantitative claims (§V prose):")
		for _, l := range lines {
			fmt.Println("  " + l)
		}
	}
	return nil
}
