package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"mcsd/internal/mapreduce"
	"mcsd/internal/metrics"
	"mcsd/internal/partition"
	"mcsd/internal/workloads"
)

// engineCorpusBytes sizes the corpus the engine microbenchmarks chew on —
// big enough that per-run constant overheads disappear, small enough that
// the whole suite stays in seconds.
const engineCorpusBytes = 4 << 20

// engineBenchResult is one row of the BENCH_mapreduce.json report.
type engineBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// engineBenchReport is the BENCH_mapreduce.json schema: the measured
// before/after numbers for the shuffle/merge hot-path overhaul.
type engineBenchReport struct {
	GeneratedBy string              `json:"generated_by"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	CorpusBytes int                 `json:"corpus_bytes"`
	Benchmarks  []engineBenchResult `json:"benchmarks"`
}

// runEngineBench measures the real engine's hot paths — the streaming
// combine against the staged emit path, the loser-tree k-way merge against
// the linear tournament, and the pipelined against the sequential
// partition driver — prints the results, and records them in outPath.
func runEngineBench(outPath string) error {
	rep := engineBenchReport{
		GeneratedBy: "mcsd-bench -engine",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CorpusBytes: engineCorpusBytes,
	}
	add := func(name string, setBytes int64, r testing.BenchmarkResult) {
		row := engineBenchResult{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if setBytes > 0 && r.NsPerOp() > 0 {
			row.MBPerSec = float64(setBytes) / 1e6 * 1e9 / float64(r.NsPerOp())
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
		fmt.Printf("  %-32s %12d ns/op %12d B/op %9d allocs/op\n",
			name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
	}

	fmt.Println("Engine hot-path benchmarks (this machine):")
	input := workloads.GenerateTextBytes(engineCorpusBytes, 1)
	ctx := context.Background()

	// Streaming combine vs the staged raw-pair path.
	withCombine := workloads.WordCountSpec()
	noCombine := workloads.WordCountSpec()
	noCombine.Combine = nil
	add("wordcount/with-combine", int64(len(input)), testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mapreduce.Run(ctx, mapreduce.Config{}, withCombine, input); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add("wordcount/no-combine", int64(len(input)), testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mapreduce.Run(ctx, mapreduce.Config{}, noCombine, input); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Loser-tree/heap k-way merge vs the linear tournament.
	const mergeTotal = 1 << 17
	for _, k := range []int{2, 8, 64} {
		runs := sortedRuns(mergeTotal, k)
		less := func(a, b int) bool { return a < b }
		add(fmt.Sprintf("merge/loser-tree/k=%d", k), 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mapreduce.MergeSorted(runs, less)
			}
		}))
		add(fmt.Sprintf("merge/linear/k=%d", k), 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mapreduce.MergeSortedLinear(runs, less)
			}
		}))
	}

	// Three-stage pipelined driver vs the sequential out-of-core driver.
	opts := partition.Options{FragmentSize: 512 << 10}
	add("partition/sequential-driver", int64(len(input)), testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := partition.Run(ctx, mapreduce.Config{}, workloads.WordCountSpec(),
				bytes.NewReader(input), opts, workloads.WordCountMerge); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add("partition/pipelined-driver", int64(len(input)), testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := partition.RunPipelined(ctx, mapreduce.Config{}, workloads.WordCountSpec(),
				bytes.NewReader(input), opts, workloads.WordCountMerge); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// One instrumented run: where does the wall clock go?
	res, err := mapreduce.Run(ctx, mapreduce.Config{}, workloads.WordCountSpec(), input)
	if err != nil {
		return err
	}
	s := res.Stats
	fmt.Println()
	tbl := metrics.PhaseTable("Word count 4 MiB: engine phase breakdown",
		[]metrics.Phase{
			{Name: "split", D: s.SplitTime},
			{Name: "map+combine", D: s.MapTime},
			{Name: "reduce", D: s.ReduceTime},
			{Name: "merge", D: s.MergeTime},
		},
		metrics.Phase{Name: "shuffle, summed over reduce tasks", D: s.ShuffleTime},
	)
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		return err
	}
	if err := emitCSV(tbl.Title, tbl.CSV()); err != nil {
		return err
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d benchmarks)\n", outPath, len(rep.Benchmarks))
	return nil
}

// sortedRuns deals `total` keys into k sorted runs, mimicking the engine's
// per-partition reduce outputs.
func sortedRuns(total, k int) [][]mapreduce.Pair[int, int] {
	runs := make([][]mapreduce.Pair[int, int], k)
	for i := range runs {
		runs[i] = make([]mapreduce.Pair[int, int], 0, total/k+1)
	}
	for i := 0; i < total; i++ {
		runs[i%k] = append(runs[i%k], mapreduce.Pair[int, int]{Key: i, Value: i})
	}
	return runs
}
