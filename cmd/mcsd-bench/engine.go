package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"mcsd/internal/mapreduce"
	"mcsd/internal/metrics"
	"mcsd/internal/partition"
	"mcsd/internal/workloads"
)

// engineCorpusBytes sizes the corpus the engine microbenchmarks chew on —
// big enough that per-run constant overheads disappear, small enough that
// the whole suite stays in seconds.
const engineCorpusBytes = 4 << 20

// Pre-overhaul engine baseline: the committed BENCH_mapreduce.json numbers
// before the zero-copy/pooled-emit rework, measured at GOMAXPROCS=1 on the
// reference container. The overhaul's acceptance targets are evaluated
// against these.
const (
	baselineWordCountMBPerSec = 36.636
	baselineWordCountAllocs   = 826998

	targetWordCountSpeedup = 2.0
	targetAllocCut         = 5.0
)

// engineSweep is the GOMAXPROCS ladder every parallel-sensitive benchmark
// is measured at.
var engineSweep = []int{1, 2, 4, 8}

// engineBenchResult is one row of the BENCH_mapreduce.json report.
type engineBenchResult struct {
	Name        string  `json:"name"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	// MergeStrategy is recorded on merge/adaptive rows: the strategy
	// MergeStrategyFor picked at that fan-in.
	MergeStrategy string `json:"merge_strategy,omitempty"`
}

// engineBenchTargets evaluates the overhaul's acceptance targets against
// the embedded pre-overhaul baseline.
type engineBenchTargets struct {
	BaselineMBPerSec    float64 `json:"baseline_wordcount_mb_per_s"`
	BaselineAllocsPerOp int64   `json:"baseline_wordcount_allocs_per_op"`
	MBPerSecAtGmp4      float64 `json:"wordcount_mb_per_s_gomaxprocs4"`
	Speedup             float64 `json:"wordcount_speedup"`
	SpeedupRequired     float64 `json:"speedup_required"`
	AllocsPerOpAtGmp4   int64   `json:"wordcount_allocs_per_op_gomaxprocs4"`
	AllocCut            float64 `json:"alloc_cut"`
	AllocCutRequired    float64 `json:"alloc_cut_required"`
	Met                 bool    `json:"met"`
}

// engineBenchReport is the BENCH_mapreduce.json schema. gomaxprocs at the
// top level is the process default the run started with (kept for older
// readers); every benchmark row carries its own gomaxprocs from the sweep.
type engineBenchReport struct {
	GeneratedBy string              `json:"generated_by"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	NumCPU      int                 `json:"num_cpu"`
	CorpusBytes int                 `json:"corpus_bytes"`
	Targets     *engineBenchTargets `json:"targets,omitempty"`
	Benchmarks  []engineBenchResult `json:"benchmarks"`
}

// bench3 runs a benchmark three times and keeps the fastest sample, the
// usual defense against scheduler noise on a shared machine (benchstat
// would take the median of many more; best-of-3 keeps the suite fast while
// stabilizing the committed numbers the CI gate compares against).
func bench3(f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 0; i < 2; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// runEngineBench measures the real engine's hot paths — the zero-copy
// streaming-combine path against the staged emit path across a GOMAXPROCS
// sweep, the k-adaptive merge against its forced strategies across the
// fan-in sweep, and the fragment-parallel against the sequential partition
// driver — prints the results, and records them in outPath.
func runEngineBench(outPath string) error {
	rep := engineBenchReport{
		GeneratedBy: "mcsd-bench -engine",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		CorpusBytes: engineCorpusBytes,
	}
	add := func(name string, gmp int, setBytes int64, r testing.BenchmarkResult) *engineBenchResult {
		row := engineBenchResult{
			Name:        name,
			GOMAXPROCS:  gmp,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if setBytes > 0 && r.NsPerOp() > 0 {
			row.MBPerSec = float64(setBytes) / 1e6 * 1e9 / float64(r.NsPerOp())
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
		fmt.Printf("  %-32s gmp=%d %12d ns/op %12d B/op %9d allocs/op\n",
			name, gmp, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
		return &rep.Benchmarks[len(rep.Benchmarks)-1]
	}

	fmt.Printf("Engine hot-path benchmarks (this machine, %d CPU(s)):\n", rep.NumCPU)
	input := workloads.GenerateTextBytes(engineCorpusBytes, 1)
	ctx := context.Background()

	// Zero-copy streaming combine vs the staged raw-pair path, across the
	// GOMAXPROCS sweep. Engine workers follow min(GOMAXPROCS, NumCPU), so
	// on a single-CPU host the sweep measures scheduling overhead, not
	// scaling — num_cpu in the report says which reading applies.
	withCombine := workloads.WordCountSpec()
	noCombine := workloads.WordCountSpec()
	noCombine.Combine = nil
	defer runtime.GOMAXPROCS(rep.GOMAXPROCS)
	for _, gmp := range engineSweep {
		runtime.GOMAXPROCS(gmp)
		add("wordcount/with-combine", gmp, int64(len(input)), bench3(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mapreduce.Run(ctx, mapreduce.Config{}, withCombine, input); err != nil {
					b.Fatal(err)
				}
			}
		}))
		add("wordcount/no-combine", gmp, int64(len(input)), bench3(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mapreduce.Run(ctx, mapreduce.Config{}, noCombine, input); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	runtime.GOMAXPROCS(rep.GOMAXPROCS)

	// The k-adaptive merge against its forced strategies across the
	// fan-in sweep — the measurement behind the engine's crossover
	// constant (mergeTreeMinK).
	const mergeTotal = 1 << 17
	for _, k := range []int{2, 8, 16, 64} {
		runs := sortedRuns(mergeTotal, k)
		less := func(a, b int) bool { return a < b }
		add(fmt.Sprintf("merge/loser-tree/k=%d", k), 1, 0, bench3(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mapreduce.MergeSortedWith(runs, less, mapreduce.MergeTree)
			}
		}))
		add(fmt.Sprintf("merge/linear/k=%d", k), 1, 0, bench3(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mapreduce.MergeSortedWith(runs, less, mapreduce.MergeLinear)
			}
		}))
		row := add(fmt.Sprintf("merge/adaptive/k=%d", k), 1, 0, bench3(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mapreduce.MergeSorted(runs, less)
			}
		}))
		_, strat := mapreduce.MergeSortedStats(runs, less)
		row.MergeStrategy = strat.String()
	}

	// Fragment-parallel vs sequential out-of-core driver. The sequential
	// driver is GOMAXPROCS-insensitive by construction, so it is measured
	// once.
	opts := partition.Options{FragmentSize: 512 << 10}
	add("partition/sequential-driver", 1, int64(len(input)), bench3(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := partition.Run(ctx, mapreduce.Config{}, workloads.WordCountSpec(),
				bytes.NewReader(input), opts, workloads.WordCountMerge); err != nil {
				b.Fatal(err)
			}
		}
	}))
	for _, gmp := range engineSweep {
		runtime.GOMAXPROCS(gmp)
		add("partition/parallel-driver", gmp, int64(len(input)), bench3(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := partition.RunParallel(ctx, mapreduce.Config{}, workloads.WordCountSpec(),
					bytes.NewReader(input), opts, workloads.WordCountMerge); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	runtime.GOMAXPROCS(rep.GOMAXPROCS)

	// Acceptance targets vs the embedded pre-overhaul baseline.
	for _, row := range rep.Benchmarks {
		if row.Name == "wordcount/with-combine" && row.GOMAXPROCS == 4 {
			t := &engineBenchTargets{
				BaselineMBPerSec:    baselineWordCountMBPerSec,
				BaselineAllocsPerOp: baselineWordCountAllocs,
				MBPerSecAtGmp4:      row.MBPerSec,
				Speedup:             row.MBPerSec / baselineWordCountMBPerSec,
				SpeedupRequired:     targetWordCountSpeedup,
				AllocsPerOpAtGmp4:   row.AllocsPerOp,
				AllocCutRequired:    targetAllocCut,
			}
			if row.AllocsPerOp > 0 {
				t.AllocCut = float64(baselineWordCountAllocs) / float64(row.AllocsPerOp)
			}
			t.Met = t.Speedup >= t.SpeedupRequired && t.AllocCut >= t.AllocCutRequired
			rep.Targets = t
			fmt.Printf("\n  targets vs pre-overhaul baseline (%.1f MB/s, %d allocs/op at GOMAXPROCS=1):\n",
				t.BaselineMBPerSec, t.BaselineAllocsPerOp)
			fmt.Printf("    wordcount speedup at GOMAXPROCS=4:  %.2fx  (required >= %.1fx)\n", t.Speedup, t.SpeedupRequired)
			fmt.Printf("    wordcount alloc cut:                %.1fx  (required >= %.1fx)\n", t.AllocCut, t.AllocCutRequired)
			fmt.Printf("    met: %v\n", t.Met)
		}
	}

	// One instrumented run: where does the wall clock go?
	res, err := mapreduce.Run(ctx, mapreduce.Config{}, workloads.WordCountSpec(), input)
	if err != nil {
		return err
	}
	s := res.Stats
	fmt.Println()
	tbl := metrics.PhaseTable("Word count 4 MiB: engine phase breakdown",
		[]metrics.Phase{
			{Name: "split", D: s.SplitTime},
			{Name: "map+combine", D: s.MapTime},
			{Name: "reduce", D: s.ReduceTime},
			{Name: "merge", D: s.MergeTime},
		},
		metrics.Phase{Name: "shuffle, summed over reduce tasks", D: s.ShuffleTime},
	)
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		return err
	}
	if err := emitCSV(tbl.Title, tbl.CSV()); err != nil {
		return err
	}
	fmt.Printf("  final merge strategy: %s\n", s.MergeStrategy)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d benchmarks)\n", outPath, len(rep.Benchmarks))
	return nil
}

// sortedRuns deals `total` keys into k sorted runs, mimicking the engine's
// per-partition reduce outputs.
func sortedRuns(total, k int) [][]mapreduce.Pair[int, int] {
	runs := make([][]mapreduce.Pair[int, int], k)
	for i := range runs {
		runs[i] = make([]mapreduce.Pair[int, int], 0, total/k+1)
	}
	for i := 0; i < total; i++ {
		runs[i%k] = append(runs[i%k], mapreduce.Pair[int, int]{Key: i, Value: i})
	}
	return runs
}
